"""Command-line interface: ``python -m repro <command>``.

Four commands cover the non-programmatic workflows:

* ``generate`` -- create a synthetic lot and save its measurements to a
  ``.npz`` (optionally also the burn-in flow log as CSV),
* ``predict`` -- fit the recommended CQR pipeline on a saved (or fresh)
  lot and print calibrated intervals for held-out chips,
* ``info`` -- describe a saved lot (shapes, read points, corners),
* ``grid`` -- run a point/region experiment grid with the resilient
  runtime: journaled checkpoint/``--resume``, deterministic
  ``--max-retries``, per-cell ``--task-timeout``, and atomic
  ``--output`` JSON with a checksum sidecar,
* ``serve`` -- score a lot through the fault-tolerant serving layer
  (:mod:`repro.serve`): verified model registry, fallback chain,
  coverage-monitored scoring; ``--bootstrap`` fits and publishes a
  first version.  Exits 0 when the service ends ``READY``, 1 when it
  ends degraded, 2 on error,
* ``analyze`` -- whole-program static analysis (concurrency/determinism
  races, conformal calibration hygiene); delegated to
  :mod:`repro.devtools.analysis.cli` with its own options.

The CLI exists so a test-floor engineer can produce and inspect data
without writing Python; everything it does is a thin shim over the
public API.
"""

from __future__ import annotations

import argparse
import os
import sys
import zipfile
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro import SiliconDataset, VminPredictionFlow
from repro.eval.experiments import (
    POINT_MODEL_NAMES,
    REGION_METHOD_NAMES,
    ExperimentProfile,
    GridResult,
    run_point_grid,
    run_region_grid,
)
from repro.models import ObliviousBoostingRegressor
from repro.runtime.artifacts import verify_artifact, write_checksum, write_json_atomic
from repro.runtime.checkpoint import RunJournal
from repro.runtime.retry import RetryPolicy
from repro.silicon.io import export_flow_csv, load_measurements, save_measurements

__all__ = ["build_parser", "main"]


def _chip_count(text: str) -> int:
    """argparse type for ``--chips``: an integer >= 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"--chips must be >= 2 (a lot needs at least two chips), got {value}"
        )
    return value


def _seed_value(text: str) -> int:
    """argparse type for ``--seed``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--seed must be a non-negative integer, got {value}"
        )
    return value


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = SiliconDataset.generate(n_chips=args.chips, seed=args.seed)
    path = save_measurements(dataset, args.output)
    sidecar = write_checksum(path)
    print(dataset.summary())
    print(f"measurements written to {path} (checksum {sidecar.name})")
    if args.flow_csv:
        rows = export_flow_csv(dataset, args.flow_csv)
        print(f"flow log ({rows} records) written to {args.flow_csv}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_measurements(args.dataset)
    print(f"chips        : {dataset.n_chips}")
    print(f"parametric   : {dataset.parametric.shape[1]} channels")
    print(f"ROD monitors : {len(dataset.rod_names)}")
    print(f"CPD monitors : {len(dataset.cpd_names)}")
    print(f"read points  : {list(dataset.read_points)} h")
    print(f"temperatures : {[f'{t:g}C' for t in dataset.temperatures]}")
    for hours in dataset.read_points:
        for temperature in dataset.temperatures:
            vmin = dataset.vmin[(temperature, hours)]
            print(
                f"  Vmin @ {temperature:>6g}C, {hours:>5d}h: "
                f"median {np.median(vmin)*1e3:6.1f} mV, "
                f"max {vmin.max()*1e3:6.1f} mV"
            )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.dataset:
        dataset = load_measurements(args.dataset)
    else:
        dataset = SiliconDataset.generate(seed=args.seed)
    if args.hours not in dataset.read_points:
        print(
            f"error: read point {args.hours} h not in {list(dataset.read_points)}",
            file=sys.stderr,
        )
        return 2
    X, names = dataset.features(args.hours)
    try:
        y = dataset.target(args.temperature, args.hours)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    n_train = int(round(dataset.n_chips * (1.0 - args.holdout)))
    if not 2 <= n_train < dataset.n_chips:
        print("error: holdout leaves no usable train/test split", file=sys.stderr)
        return 2

    base = ObliviousBoostingRegressor(
        n_estimators=args.trees, quantile=0.5, random_state=args.seed
    )
    flow = VminPredictionFlow(base_model=base, alpha=args.alpha, random_state=args.seed)
    flow.fit(X[:n_train], y[:n_train], feature_names=names)
    try:
        intervals = flow.predict_interval(X[n_train:])
    except RuntimeError as error:
        # Typically: too few calibration chips for the requested alpha.
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"CQR intervals @ {args.temperature:g}C, {args.hours}h "
        f"(alpha={args.alpha:g}, guarantee >= {flow.guaranteed_coverage_:.1%})"
    )
    print(
        f"held-out coverage {intervals.coverage(y[n_train:]):.1%}, "
        f"mean width {intervals.mean_width*1e3:.1f} mV"
    )
    for i in range(len(intervals)):
        print(
            f"chip {n_train + i:4d}: "
            f"[{intervals.lower[i]*1e3:7.1f}, {intervals.upper[i]*1e3:7.1f}] mV"
        )
    return 0


def _split_list(text: str) -> List[str]:
    """Split a comma-separated CLI list, dropping empty entries."""
    return [item.strip() for item in text.split(",") if item.strip()]


def _verify_dataset_artifact(path: str) -> None:
    """Checksum-verify a lot archive when its ``.sha256`` sidecar exists.

    Lots written by ``repro generate`` carry a sidecar; a corrupt
    archive then raises :class:`ArtifactCorruptionError` (exit 2 via
    the CLI's ``ValueError`` mapping) before half-parsed data reaches a
    grid or serving run.  Sidecar-less archives load unverified, so
    hand-built lots keep working.
    """
    if Path(str(path) + ".sha256").exists():
        verify_artifact(path)


def _grid_cell_rows(kind: str, result: GridResult) -> List[Dict[str, Any]]:
    """Flatten a grid into JSON-ready per-cell rows (cell order)."""
    rows: List[Dict[str, Any]] = []
    for (name, temperature, hours), cell in result.items():
        row: Dict[str, Any] = {
            "name": name,
            "temperature_c": temperature,
            "hours": hours,
        }
        if kind == "point":
            row.update(
                r2=cell.r2,
                rmse=cell.rmse,
                r2_per_fold=list(cell.r2_per_fold),
                rmse_per_fold=list(cell.rmse_per_fold),
            )
        else:
            row.update(
                coverage=cell.coverage,
                width=cell.width,
                coverage_per_fold=list(cell.coverage_per_fold),
                width_per_fold=list(cell.width_per_fold),
            )
        rows.append(row)
    return rows


def _cmd_grid(args: argparse.Namespace) -> int:
    known = POINT_MODEL_NAMES if args.kind == "point" else REGION_METHOD_NAMES
    names = _split_list(args.names) if args.names else [known[0]]
    unknown = [name for name in names if name not in known]
    if unknown:
        print(
            f"error: unknown {args.kind} names {unknown}; expected a subset "
            f"of {list(known)}",
            file=sys.stderr,
        )
        return 2
    temperatures = [float(t) for t in _split_list(args.temperatures)]
    read_points = [int(h) for h in _split_list(args.hours)]
    if not temperatures or not read_points:
        print("error: --temperatures and --hours must be non-empty", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2

    if args.resume and not args.journal:
        print("error: --resume requires --journal", file=sys.stderr)
        return 2
    journal: Optional[RunJournal] = None
    if args.journal:
        journal = RunJournal(
            args.journal,
            meta={"kind": args.kind, "profile": args.profile, "seed": args.seed},
        )
        if journal.path.exists() and journal.path.stat().st_size > 0:
            if not args.resume:
                print(
                    f"error: journal {journal.path} already exists; pass "
                    "--resume to continue it or remove the file to start over",
                    file=sys.stderr,
                )
                return 2
            print(f"resuming from {journal.path} ({len(journal)} cells recorded)")

    if args.dataset:
        _verify_dataset_artifact(args.dataset)
        dataset = load_measurements(args.dataset)
    else:
        dataset = SiliconDataset.generate(seed=args.seed)
    profile = ExperimentProfile.from_name(args.profile)
    retry_policy = (
        RetryPolicy(max_attempts=args.max_retries + 1, seed=args.seed)
        if args.max_retries > 0
        else None
    )

    common: Dict[str, Any] = dict(
        profile=profile,
        seed=args.seed,
        n_jobs=args.n_jobs,
        journal=journal,
        retry_policy=retry_policy,
        timeout=args.task_timeout,
        on_error="capture",
    )
    if args.kind == "point":
        result = run_point_grid(dataset, names, temperatures, read_points, **common)
    else:
        result = run_region_grid(
            dataset, names, temperatures, read_points, alpha=args.alpha, **common
        )

    for (name, temperature, hours), cell in result.items():
        if args.kind == "point":
            metrics = f"R2 {cell.r2:6.3f}, RMSE {cell.rmse:6.2f} mV"
        else:
            metrics = f"coverage {cell.coverage:.1%}, width {cell.width:6.2f} mV"
        print(f"  {name:>12s} @ {temperature:>6g}C, {hours:>5d}h: {metrics}")
    for failure in result.failures:
        name, temperature, hours = failure.key
        print(
            f"  {name:>12s} @ {temperature:>6g}C, {hours:>5d}h: FAILED "
            f"after {failure.attempts} attempt(s) "
            f"[{failure.error_type}] {failure.message}",
            file=sys.stderr,
        )
    print(
        f"grid: {len(result)}/{len(result) + len(result.failures)} cells ok, "
        f"{result.n_retried} retried"
    )

    if args.output:
        report = {
            "schema_version": 1,
            "kind": args.kind,
            "profile": args.profile,
            "seed": args.seed,
            "cells": _grid_cell_rows(args.kind, result),
            "failures": [
                {
                    "name": f.key[0],
                    "temperature_c": f.key[1],
                    "hours": f.key[2],
                    "error_type": f.error_type,
                    "attempts": f.attempts,
                    "timed_out": f.timed_out,
                }
                for f in result.failures
            ],
        }
        path = write_json_atomic(args.output, report)
        sidecar = write_checksum(path)
        print(f"results written to {path} (checksum {sidecar.name})")
    return 0 if result.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serving stack is only needed for this command.
    from repro.robust import RobustVminFlow
    from repro.serve import (
        ModelRegistry,
        RejectedRequest,
        ServiceState,
        VminServingService,
    )

    if args.dataset:
        _verify_dataset_artifact(args.dataset)
        dataset = load_measurements(args.dataset)
    else:
        dataset = SiliconDataset.generate(seed=args.seed)
    if args.hours not in dataset.read_points:
        print(
            f"error: read point {args.hours} h not in {list(dataset.read_points)}",
            file=sys.stderr,
        )
        return 2
    X, names = dataset.features(args.hours)
    try:
        y = dataset.target(args.temperature, args.hours)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    n_train = int(round(dataset.n_chips * (1.0 - args.holdout)))
    if not 2 <= n_train < dataset.n_chips:
        print("error: holdout leaves no usable train/test split", file=sys.stderr)
        return 2

    registry = ModelRegistry(args.registry)
    if args.bootstrap:
        parametric = [i for i, n in enumerate(names) if n.startswith("par_")]
        monitors = [i for i, n in enumerate(names) if not n.startswith("par_")]
        base = ObliviousBoostingRegressor(
            n_estimators=args.trees, quantile=0.5, random_state=args.seed
        )
        flow = RobustVminFlow(
            base_model=base, alpha=args.alpha, random_state=args.seed
        )
        flow.fit(
            X[:n_train],
            y[:n_train],
            feature_names=names,
            fallback_columns=parametric or None,
            monitor_columns=monitors or None,
        )
        record = registry.publish(
            flow,
            reason="published",
            metadata={"alpha": args.alpha, "seed": args.seed},
        )
        print(f"bootstrapped registry: published {record.name}")

    service = VminServingService(registry)
    service.start()
    if service.served_model is None:
        print(
            f"error: registry {args.registry} has no servable version "
            "(pass --bootstrap to fit and publish one)",
            file=sys.stderr,
        )
        return 2

    try:
        result = service.score(X[n_train:])
    except RejectedRequest as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    service.observe(X[n_train:], y[n_train:])
    prediction = result.prediction
    print(
        f"served {len(prediction)} chips from {result.model_version} "
        f"(fallback level {result.fallback_level.name}, "
        f"status {prediction.status.value})"
    )
    # The manifest records which compiled decision-table kernels the
    # served bundle carries; surface them so "this registry serves
    # through the fast path" is visible from the command line.
    if result.model_version is not None:
        for entry in registry.describe(result.model_version).manifest.get(
            "compiled", []
        ):
            size_key = "n_leaves" if "n_leaves" in entry else "max_nodes"
            print(
                "  compiled kernel: {}(n_trees={}, {}={})".format(
                    entry["kernel"], entry["n_trees"], size_key, entry[size_key]
                )
            )
    print(
        f"held-out coverage {prediction.coverage(y[n_train:]):.1%}, "
        f"mean width {prediction.mean_width*1e3:.1f} mV"
    )
    for note in prediction.notes:
        print(f"  note: {note}")
    for transition in service.health.downgrades():
        print(f"  downgrade: {transition.describe()}")
    print(f"service state: {service.state.value}")
    return 0 if service.state is ServiceState.READY else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis stack is only needed for this command.
    from repro.devtools.analysis.cli import main as analyze_main

    return analyze_main(list(args.rest))


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI parser (generate/info/predict/grid/serve/analyze)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Vmin interval prediction toolkit (DATE 2024 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic lot and save its measurements"
    )
    generate.add_argument("output", help="output .npz path")
    generate.add_argument("--chips", type=_chip_count, default=156)
    generate.add_argument("--seed", type=_seed_value, default=0)
    generate.add_argument(
        "--flow-csv", default=None, help="also export the burn-in flow log CSV"
    )
    generate.set_defaults(handler=_cmd_generate)

    info = commands.add_parser("info", help="describe a saved lot")
    info.add_argument("dataset", help=".npz from 'generate'")
    info.set_defaults(handler=_cmd_info)

    predict = commands.add_parser(
        "predict", help="fit the CQR pipeline and print intervals"
    )
    predict.add_argument(
        "--dataset", default=None, help=".npz lot (default: generate fresh)"
    )
    predict.add_argument("--temperature", type=float, default=25.0)
    predict.add_argument("--hours", type=int, default=0)
    predict.add_argument("--alpha", type=float, default=0.1)
    predict.add_argument("--holdout", type=float, default=0.25)
    predict.add_argument("--trees", type=int, default=100)
    predict.add_argument("--seed", type=_seed_value, default=0)
    predict.set_defaults(handler=_cmd_predict)

    grid = commands.add_parser(
        "grid",
        help="run an experiment grid with checkpoint/resume and retries",
    )
    grid.add_argument(
        "--kind", choices=("point", "region"), default="point",
        help="point (Fig. 2) or region (Table III) grid",
    )
    grid.add_argument(
        "--dataset", default=None, help=".npz lot (default: generate fresh)"
    )
    grid.add_argument(
        "--names", default=None,
        help="comma-separated model/method names (default: first known name)",
    )
    grid.add_argument(
        "--temperatures", default="25",
        help="comma-separated corner temperatures in C (default: 25)",
    )
    grid.add_argument(
        "--hours", default="0",
        help="comma-separated read points in hours (default: 0)",
    )
    grid.add_argument(
        "--profile", choices=("smoke", "fast", "full"), default="smoke"
    )
    grid.add_argument("--alpha", type=float, default=0.1)
    grid.add_argument("--seed", type=_seed_value, default=0)
    grid.add_argument(
        "--journal", default=None,
        help="JSONL run journal; completed cells survive a crash",
    )
    grid.add_argument(
        "--resume", action="store_true",
        help="continue an existing journal instead of refusing it",
    )
    grid.add_argument(
        "--max-retries", type=int, default=0,
        help="extra attempts per cell on transient faults (default: 0)",
    )
    grid.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-cell watchdog deadline in seconds (default: none)",
    )
    grid.add_argument(
        "--n-jobs", type=int, default=None,
        help="grid worker count (default: REPRO_N_JOBS or cpu count)",
    )
    grid.add_argument(
        "--output", default=None,
        help="write grid results JSON atomically, with a .sha256 sidecar",
    )
    grid.set_defaults(handler=_cmd_grid)

    serve = commands.add_parser(
        "serve",
        help="score a lot through the verified-registry serving layer",
    )
    serve.add_argument(
        "registry", help="model registry root directory (created if absent)"
    )
    serve.add_argument(
        "--dataset", default=None, help=".npz lot (default: generate fresh)"
    )
    serve.add_argument(
        "--bootstrap", action="store_true",
        help="fit a RobustVminFlow on the train split and publish it first",
    )
    serve.add_argument("--temperature", type=float, default=25.0)
    serve.add_argument("--hours", type=int, default=0)
    serve.add_argument("--alpha", type=float, default=0.1)
    serve.add_argument("--holdout", type=float, default=0.25)
    serve.add_argument("--trees", type=int, default=100)
    serve.add_argument("--seed", type=_seed_value, default=0)
    serve.set_defaults(handler=_cmd_serve)

    # ``analyze`` is delegated wholesale to the analysis CLI (it owns a
    # richer option set); this stub keeps it visible in --help.
    analyze = commands.add_parser(
        "analyze",
        help="whole-program static analysis (REP2xx/REP3xx deep pass)",
        add_help=False,
    )
    analyze.add_argument("rest", nargs=argparse.REMAINDER)
    analyze.set_defaults(handler=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code.

    0 means success, 1 means a grid completed with captured cell
    failures (partial results were still written), 2 means a user
    error (bad arguments, unreadable inputs).

    Argument errors (argparse's exit code 2) and predictable runtime
    failures -- a dataset path that does not exist, a file that is not a
    lot archive, an invalid parameter that slipped past argparse -- are
    reported as one ``error:`` line on stderr, never a traceback.
    """
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "analyze":
        # Delegated before argparse: the analysis CLI owns its options
        # (argparse.REMAINDER would swallow leading flags otherwise).
        return _cmd_analyze(
            argparse.Namespace(rest=arguments[1:])
        )
    try:
        args = build_parser().parse_args(arguments)
    except SystemExit as exit_request:  # argparse already printed the message
        code = exit_request.code
        return code if isinstance(code, int) else 2
    try:
        return args.handler(args)
    except BrokenPipeError:
        # The consumer closed stdout early (``... | head``); silence the
        # exit-time flush and use the conventional 128 + SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except (ValueError, OSError, zipfile.BadZipFile) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
