"""Per-function control-flow graphs for the data-flow framework.

The CFG is statement-granular: every basic block holds a run of
statements with no internal branching, and compound statements appear
as *header* statements in their own right (an ``if`` header evaluates
its test; a ``for`` header evaluates its iterable and binds its
target).  Transfer functions therefore never recurse into compound
bodies -- the bodies are separate blocks wired with explicit edges,
back edges included, which is exactly what a worklist fixpoint needs
for loops.

The graph deliberately over-approximates exceptional control flow
(``try`` bodies may jump to any handler; ``finally`` joins everything):
for may-analyses such as reaching definitions and taint, extra edges
can only add facts, never hide them.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

__all__ = ["BasicBlock", "ControlFlowGraph", "build_cfg"]


class BasicBlock:
    """A straight-line run of statements plus successor edges."""

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.statements: List[ast.stmt] = []
        self.successors: List["BasicBlock"] = []

    def link(self, other: "BasicBlock") -> None:
        if other not in self.successors:
            self.successors.append(other)

    def __repr__(self) -> str:
        succ = [b.id for b in self.successors]
        return f"BasicBlock(id={self.id}, stmts={len(self.statements)}, succ={succ})"


class ControlFlowGraph:
    """All blocks of one function body, entry first."""

    def __init__(self, blocks: List[BasicBlock], entry: BasicBlock) -> None:
        self.blocks = blocks
        self.entry = entry

    def predecessors(self, block: BasicBlock) -> List[BasicBlock]:
        return [b for b in self.blocks if block in b.successors]

    def statements(self) -> List[Tuple[BasicBlock, ast.stmt]]:
        """Every (block, statement) pair in block order."""
        return [(b, s) for b in self.blocks for s in b.statements]


class _Builder:
    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        # (continue_target, break_target) per enclosing loop.
        self.loops: List[Tuple[BasicBlock, BasicBlock]] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks.append(block)
        return block

    def build_body(
        self, stmts: List[ast.stmt], current: Optional[BasicBlock]
    ) -> Optional[BasicBlock]:
        """Thread ``stmts`` from ``current``; ``None`` means fell off."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/raise/break: still build
                # it (rules may inspect it) but leave it unlinked.
                current = self.new_block()
            current = self.build_stmt(stmt, current)
        return current

    def build_stmt(
        self, stmt: ast.stmt, current: BasicBlock
    ) -> Optional[BasicBlock]:
        if isinstance(stmt, ast.If):
            current.statements.append(stmt)
            after = self.new_block()
            then_entry = self.new_block()
            current.link(then_entry)
            then_end = self.build_body(stmt.body, then_entry)
            if then_end is not None:
                then_end.link(after)
            if stmt.orelse:
                else_entry = self.new_block()
                current.link(else_entry)
                else_end = self.build_body(stmt.orelse, else_entry)
                if else_end is not None:
                    else_end.link(after)
            else:
                current.link(after)
            return after
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block()
            current.link(header)
            header.statements.append(stmt)
            after = self.new_block()
            body_entry = self.new_block()
            header.link(body_entry)
            header.link(after)  # zero iterations / loop exit
            self.loops.append((header, after))
            body_end = self.build_body(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                body_end.link(header)  # back edge
            if stmt.orelse:
                else_entry = self.new_block()
                header.link(else_entry)
                else_end = self.build_body(stmt.orelse, else_entry)
                if else_end is not None:
                    else_end.link(after)
            return after
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            after = self.new_block()
            body_entry = self.new_block()
            current.link(body_entry)
            body_end = self.build_body(stmt.body, body_entry)
            handler_ends: List[Optional[BasicBlock]] = []
            for handler in stmt.handlers:
                handler_entry = self.new_block()
                # Any point of the body may raise: both the entry and
                # the end of the body reach each handler.
                body_entry.link(handler_entry)
                if body_end is not None:
                    body_end.link(handler_entry)
                handler_ends.append(self.build_body(handler.body, handler_entry))
            tail_ends: List[BasicBlock] = [
                end for end in handler_ends if end is not None
            ]
            if stmt.orelse:
                else_entry = self.new_block()
                if body_end is not None:
                    body_end.link(else_entry)
                else_end = self.build_body(stmt.orelse, else_entry)
                if else_end is not None:
                    tail_ends.append(else_end)
            elif body_end is not None:
                tail_ends.append(body_end)
            if stmt.finalbody:
                final_entry = self.new_block()
                for end in tail_ends:
                    end.link(final_entry)
                if not tail_ends:
                    body_entry.link(final_entry)
                final_end = self.build_body(stmt.finalbody, final_entry)
                if final_end is not None:
                    final_end.link(after)
            else:
                for end in tail_ends:
                    end.link(after)
            return after
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # Context managers run their body unconditionally here; the
            # header statement binds the ``as`` names.
            current.statements.append(stmt)
            return self.build_body(stmt.body, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.statements.append(stmt)
            return None
        if isinstance(stmt, ast.Break):
            current.statements.append(stmt)
            if self.loops:
                current.link(self.loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            current.statements.append(stmt)
            if self.loops:
                current.link(self.loops[-1][0])
            return None
        current.statements.append(stmt)
        return current


def build_cfg(body: List[ast.stmt]) -> ControlFlowGraph:
    """Build the control-flow graph of one function (or module) body."""
    builder = _Builder()
    entry = builder.new_block()
    builder.build_body(body, entry)
    return ControlFlowGraph(builder.blocks, entry)
