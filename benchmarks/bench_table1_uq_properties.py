"""Table I -- empirical verification of the UQ-method property matrix.

The paper's Table I is qualitative; this benchmark turns its two
checkable claims into measurements on held-out synthetic chips:

* **test-data coverage guarantee**: GP (Bayesian), a deep ensemble, and
  plain QR carry no finite-sample guarantee -- their measured coverage
  drifts below the 90 % target -- while split CP and CQR stay at or above
  it (up to binomial noise, quantified alongside);
* **adaptation to heteroscedasticity**: CP's constant-width intervals
  cannot track input-dependent noise; CQR's width correlates with the
  true per-chip uncertainty.  We report the interval-width standard
  deviation (0 for CP by construction) and the width ratio between
  defective and healthy chips.

Also reports wall-clock fit cost per method (the "computational
efficiency" row; GP is cubic in n, ensembles pay a x5 factor).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import publish

from repro.core import ConformalizedQuantileRegressor, SplitConformalRegressor
from repro.eval.reporting import format_table
from repro.models import (
    DeepEnsembleRegressor,
    GaussianProcessRegressor,
    LinearRegression,
    MLPRegressor,
    QuantileBandRegressor,
    QuantileLinearRegression,
)
from repro.features import CFSSelector
from repro.features.selection import CFSSelectedRegressor


N_REPEATS = 5
"""Independent train/test permutations averaged per method: a single
39-chip split has ~5 points of binomial coverage noise, enough to blur
the guaranteed/unguaranteed distinction the table exists to show."""


def _render(dataset, profile) -> str:
    alpha = 0.1
    # One representative corner; Table I is method-level, not sweep-level.
    X_all, _ = dataset.features(0)
    y_all = dataset.target(25.0, 0) * 1000.0  # mV
    defective_all = dataset.defect_mask()

    accumulator = {}

    def evaluate(name, fit_predict_interval, context):
        start = time.perf_counter()
        lower, upper = fit_predict_interval(context)
        seconds = time.perf_counter() - start
        yte, defect_test = context["yte"], context["defect_test"]
        width = upper - lower
        covered = float(np.mean((yte >= lower) & (yte <= upper)))
        adaptive = float(np.std(width))
        if defect_test.any() and (~defect_test).any():
            ratio = float(np.mean(width[defect_test]) / np.mean(width[~defect_test]))
        else:
            ratio = float("nan")
        accumulator.setdefault(name, []).append(
            [covered * 100.0, float(np.mean(width)), adaptive, ratio, seconds]
        )

    def gp_run(c):
        gp = GaussianProcessRegressor(
            n_restarts=profile.gp_restarts, random_state=0
        ).fit(c["Xtr"], c["ytr"])
        return gp.predict_interval(c["Xte"], alpha=alpha)

    def ensemble_run(c):
        ensemble = DeepEnsembleRegressor(
            MLPRegressor(epochs=profile.nn_epochs, random_state=0),
            n_members=5,
            random_state=0,
        ).fit(c["Xtr"], c["ytr"])
        return ensemble.predict_interval(c["Xte"], alpha=alpha)

    def qr_run(c):
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=alpha)
        band.fit(c["Xtr"], c["ytr"])
        return band.predict_interval(c["Xte"])

    def cp_run(c):
        cp = SplitConformalRegressor(
            CFSSelectedRegressor(LinearRegression(), k=10),
            alpha=alpha,
            random_state=0,
        ).fit(c["Xtr_raw"], c["ytr"])
        intervals = cp.predict_interval(c["Xte_raw"])
        return intervals.lower, intervals.upper

    def cqr_run(c):
        cqr = ConformalizedQuantileRegressor(
            CFSSelectedRegressor(QuantileLinearRegression(), k=10, quantile=0.5),
            alpha=alpha,
            random_state=0,
        ).fit(c["Xtr_raw"], c["ytr"])
        intervals = cqr.predict_interval(c["Xte_raw"])
        return intervals.lower, intervals.upper

    for repeat in range(N_REPEATS):
        permutation = np.random.default_rng(repeat).permutation(y_all.shape[0])
        X = X_all[permutation]
        y = y_all[permutation]
        defective = defective_all[permutation]
        # Non-conformal rows select once on the training chips (no
        # guarantee is claimed for them); CP/CQR select inside the
        # conformal split via CFSSelectedRegressor.
        selector = CFSSelector(k_max=10).fit(X[:117], y[:117])
        Xs = selector.transform(X)
        context = {
            "Xtr": Xs[:117],
            "Xte": Xs[117:],
            "Xtr_raw": X[:117],
            "Xte_raw": X[117:],
            "ytr": y[:117],
            "yte": y[117:],
            "defect_test": defective[117:],
        }
        evaluate("Bayesian (GP)", gp_run, context)
        evaluate("Ensemble (5x NN)", ensemble_run, context)
        evaluate("QR (linear)", qr_run, context)
        evaluate("CP (split, linear)", cp_run, context)
        evaluate("CQR (linear)", cqr_run, context)

    rows = [
        [name] + list(np.nanmean(np.asarray(values), axis=0))
        for name, values in accumulator.items()
    ]

    table = format_table(
        ["Method", "Coverage (%)", "Len (mV)", "Width std (mV)", "Defect/healthy width", "Fit+predict (s)"],
        rows,
        title=(
            "Table I | empirical UQ property check "
            f"(alpha=0.1, 25C, 0h, mean of {N_REPEATS} splits)"
        ),
    )
    note = (
        "\nGuarantee row of Table I: only CP and CQR are calibrated for "
        "test data.\nAdaptation row: CP width std is 0 by construction; "
        "CQR/QR/GP widths vary per chip."
    )
    return table + note


def test_table1_uq_properties(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("table1_uq_properties", text)
