"""Tests for scaler, dropper, and pipeline composition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.features.preprocessing import (
    ConstantFeatureDropper,
    Pipeline,
    StandardScaler,
)
from repro.models.linear import LinearRegression


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self, rng):
        X = np.column_stack([rng.normal(size=20), np.full(20, 7.0)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_array_equal(Z[:, 1], 0.0)

    @given(
        hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(2, 20), st.integers(1, 5)),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=40)
    def test_roundtrip_property(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(X)), X, atol=1e-6, rtol=1e-9
        )

    def test_transform_uses_training_stats(self, rng):
        train = rng.normal(size=(50, 2))
        scaler = StandardScaler().fit(train)
        test = rng.normal(loc=10.0, size=(10, 2))
        Z = scaler.transform(test)
        assert Z.mean() > 1.0  # shifted data stays shifted

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_width_mismatch_raises(self, rng):
        scaler = StandardScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="columns"):
            scaler.transform(rng.normal(size=(5, 2)))


class TestConstantFeatureDropper:
    def test_drops_only_dead_columns(self, rng):
        X = np.column_stack(
            [rng.normal(size=30), np.zeros(30), rng.normal(size=30)]
        )
        dropper = ConstantFeatureDropper().fit(X)
        out = dropper.transform(X)
        assert out.shape == (30, 2)
        np.testing.assert_array_equal(dropper.kept_, [0, 2])

    def test_tolerance_drops_near_constant(self, rng):
        X = np.column_stack(
            [rng.normal(size=100), 1e-6 * rng.normal(size=100)]
        )
        out = ConstantFeatureDropper(tolerance=1e-3).fit_transform(X)
        assert out.shape[1] == 1

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            ConstantFeatureDropper(tolerance=-1.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ConstantFeatureDropper().transform(np.ones((2, 2)))


class TestPipeline:
    def test_transforms_then_predicts(self, rng):
        X = np.column_stack([rng.normal(size=100), np.zeros(100)])
        y = 2.0 * X[:, 0]
        pipeline = Pipeline(
            [
                ("drop", ConstantFeatureDropper()),
                ("scale", StandardScaler()),
                ("model", LinearRegression()),
            ]
        )
        pipeline.fit(X, y)
        prediction = pipeline.predict(X)
        assert np.corrcoef(prediction, y)[0, 1] > 0.999

    def test_transform_interface_when_last_is_transformer(self, rng):
        X = rng.normal(size=(20, 3))
        pipeline = Pipeline(
            [("drop", ConstantFeatureDropper()), ("scale", StandardScaler())]
        )
        out = pipeline.fit_transform(X)
        assert out.shape == (20, 3)

    def test_predict_on_transformer_pipeline_raises(self, rng):
        pipeline = Pipeline([("scale", StandardScaler())])
        pipeline.fit(rng.normal(size=(5, 2)))
        with pytest.raises(TypeError, match="predict"):
            pipeline.predict(np.ones((2, 2)))

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="unique"):
            Pipeline([("a", StandardScaler()), ("a", StandardScaler())])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Pipeline([])
