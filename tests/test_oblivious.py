"""Tests for the CatBoost-style oblivious boosting regressor."""

import numpy as np
import pytest

from repro.models.oblivious import ObliviousBoostingRegressor, ObliviousTree


@pytest.fixture()
def boost_data(rng):
    X = rng.normal(size=(200, 6))
    y = 2.0 * X[:, 0] + np.sin(2 * X[:, 1]) + rng.normal(scale=0.2, size=200)
    return X[:150], y[:150], X[150:], y[150:]


class TestObliviousTree:
    def test_leaf_indices_binary_code(self):
        tree = ObliviousTree(
            features=np.array([0, 1]),
            thresholds=np.array([0.0, 0.0]),
            leaf_values=np.array([10.0, 20.0, 30.0, 40.0]),
        )
        X = np.array(
            [[-1.0, -1.0], [-1.0, 1.0], [1.0, -1.0], [1.0, 1.0]]
        )
        np.testing.assert_allclose(tree.predict(X), [10.0, 20.0, 30.0, 40.0])

    def test_same_test_per_level(self):
        """An oblivious tree applies the identical test to all level nodes:
        swapping earlier decisions never changes later thresholds."""
        tree = ObliviousTree(
            features=np.array([0, 0]),
            thresholds=np.array([0.0, 1.0]),
            leaf_values=np.arange(4.0),
        )
        # value 0.5: above 0.0, below 1.0 -> code 0b10 = 2
        assert tree.predict(np.array([[0.5]]))[0] == 2.0

    def test_depth_zero_table_is_a_valid_tree(self):
        """The tree itself owns the degenerate single-leaf case; callers
        need no special-casing."""
        tree = ObliviousTree(
            features=np.empty(0, dtype=np.int64),
            thresholds=np.empty(0),
            leaf_values=np.array([4.5]),
        )
        X = np.ones((3, 2))
        np.testing.assert_array_equal(
            tree.leaf_indices(X), np.zeros(3, dtype=np.int64)
        )
        np.testing.assert_array_equal(tree.predict(X), np.full(3, 4.5))
        assert tree.predict(np.empty((0, 2))).shape == (0,)

    def test_leaf_indices_compare_in_float64(self):
        """A float32 row must land on the same side of a split as its
        float64 widening -- thresholds are float64 and so is the
        comparison."""
        threshold = 1.0 + 3.0 * 2.0**-25  # rounds UP to 1 + 2**-23 in float32
        tree = ObliviousTree(
            features=np.array([0], dtype=np.int64),
            thresholds=np.array([threshold]),
            leaf_values=np.array([10.0, 20.0]),
        )
        X32 = np.array([[1.0 + 2.0**-23]], dtype=np.float32)
        assert tree.leaf_indices(X32)[0] == 1
        np.testing.assert_array_equal(
            tree.predict(X32), tree.predict(X32.astype(np.float64))
        )


class TestPointObjective:
    def test_fits_nonlinear_signal(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        model = ObliviousBoostingRegressor(random_state=0).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.7

    def test_deterministic_with_seed(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        a = ObliviousBoostingRegressor(random_state=3).fit(Xtr, ytr)
        b = ObliviousBoostingRegressor(random_state=3).fit(Xtr, ytr)
        np.testing.assert_allclose(a.predict(Xte), b.predict(Xte))

    def test_seeds_give_different_models(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        a = ObliviousBoostingRegressor(random_state=0).fit(Xtr, ytr)
        b = ObliviousBoostingRegressor(random_state=1).fit(Xtr, ytr)
        assert not np.allclose(a.predict(Xte), b.predict(Xte))

    def test_constant_feature_never_split(self, rng):
        X = np.column_stack([rng.normal(size=80), np.full(80, 7.0)])
        y = X[:, 0] * 2
        model = ObliviousBoostingRegressor(n_estimators=20, random_state=0).fit(X, y)
        used = {int(f) for tree in model.trees_ for f in tree.features}
        assert 1 not in used

    def test_more_rounds_reduce_training_error(self, boost_data):
        Xtr, ytr, *_ = boost_data
        few = ObliviousBoostingRegressor(n_estimators=3, random_state=0).fit(Xtr, ytr)
        many = ObliviousBoostingRegressor(n_estimators=60, random_state=0).fit(Xtr, ytr)
        assert many.score(Xtr, ytr) > few.score(Xtr, ytr)

    def test_pure_noise_gives_shallow_model(self, rng):
        X = rng.normal(size=(40, 3))
        y = np.full(40, 5.0)  # constant target: no split should help
        model = ObliviousBoostingRegressor(n_estimators=5, random_state=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), 5.0, atol=1e-8)

    def test_feature_importances_normalised(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = ObliviousBoostingRegressor(n_estimators=20, random_state=0).fit(Xtr, ytr)
        assert model.feature_importances_.sum() == pytest.approx(1.0)

    def test_shortlist_matches_exhaustive_closely(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        fast = ObliviousBoostingRegressor(
            n_estimators=30, feature_shortlist=3, random_state=0
        ).fit(Xtr, ytr)
        # 6 features only: shortlist barely binds; quality must hold.
        assert fast.score(Xte, yte) > 0.6


class TestQuantileObjective:
    def test_exact_leaf_median_converges(self, boost_data):
        """Exact-quantile leaf estimation makes the median model a decent
        point predictor (unlike unit-Hessian pinball steps)."""
        Xtr, ytr, Xte, yte = boost_data
        model = ObliviousBoostingRegressor(quantile=0.5, random_state=0).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.6

    def test_band_ordering(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        lo = ObliviousBoostingRegressor(quantile=0.1, random_state=0).fit(Xtr, ytr)
        hi = ObliviousBoostingRegressor(quantile=0.9, random_state=0).fit(Xtr, ytr)
        assert np.mean(hi.predict(Xte) - lo.predict(Xte)) > 0

    def test_scale_equivariance_of_exact_leaves(self, boost_data):
        """Exact-quantile leaves make the fit equivariant to target scale
        (CatBoost property the XGB-style pinball boosting lacks)."""
        Xtr, ytr, Xte, _ = boost_data
        base = ObliviousBoostingRegressor(quantile=0.5, random_state=0).fit(Xtr, ytr)
        scaled = ObliviousBoostingRegressor(quantile=0.5, random_state=0).fit(
            Xtr, ytr * 1000.0
        )
        np.testing.assert_allclose(
            scaled.predict(Xte) / 1000.0, base.predict(Xte), rtol=1e-6, atol=1e-6
        )


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"depth": 0},
            {"l2_leaf_reg": -1.0},
            {"max_bins": 1},
            {"rsm": 0.0},
            {"random_strength": -1.0},
            {"bagging_temperature": -0.5},
            {"quantile": 0.0},
            {"feature_shortlist": 0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ObliviousBoostingRegressor(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            ObliviousBoostingRegressor().predict(np.zeros((2, 2)))

    def test_predict_rejects_wrong_width(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = ObliviousBoostingRegressor(n_estimators=3, random_state=0).fit(Xtr, ytr)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, 3)))


class TestStagedPredict:
    def test_last_stage_matches_predict(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        model = ObliviousBoostingRegressor(n_estimators=8, random_state=0).fit(
            Xtr, ytr
        )
        stages = model.staged_predict(Xte)
        assert stages.shape == (8, Xte.shape[0])
        np.testing.assert_allclose(stages[-1], model.predict(Xte), atol=1e-10)

    def test_training_loss_decreases_along_stages(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = ObliviousBoostingRegressor(n_estimators=30, random_state=0).fit(
            Xtr, ytr
        )
        stages = model.staged_predict(Xtr)
        losses = ((stages - ytr[None, :]) ** 2).mean(axis=1)
        assert losses[-1] < losses[0]


class TestRegressionGuards:
    def test_zero_split_fit_serves_the_constant(self, rng):
        """A fit where no round finds a split yields all depth-0 tables;
        predict and staged_predict must serve them like any other tree
        (the regressor no longer special-cases them inline)."""
        X = rng.normal(size=(40, 3))
        y = np.full(40, -1.75)
        model = ObliviousBoostingRegressor(n_estimators=4, random_state=0).fit(
            X, y
        )
        assert all(tree.features.size == 0 for tree in model.trees_)
        Xte = rng.normal(size=(10, 3))
        np.testing.assert_allclose(model.predict(Xte), -1.75)
        stages = model.staged_predict(Xte)
        np.testing.assert_array_equal(stages[-1], model.predict(Xte))

    def test_quantile_mode_actually_splits(self, boost_data):
        """Regression guard: the no-split baseline must be computed once
        per leaf set, not summed over candidate features -- the inflated
        baseline silently suppressed ALL splits in quantile mode."""
        Xtr, ytr, *_ = boost_data
        model = ObliviousBoostingRegressor(
            quantile=0.5, n_estimators=5, random_state=0
        ).fit(Xtr, ytr)
        assert any(tree.features.size > 0 for tree in model.trees_)

    def test_wide_matrix_quantile_mode_splits(self, rng):
        """Same guard at paper-like width (the bug scaled with n_features)."""
        X = rng.normal(size=(100, 500))
        y = X[:, 3] + rng.normal(scale=0.1, size=100)
        model = ObliviousBoostingRegressor(
            quantile=0.5, n_estimators=3, random_state=0
        ).fit(X, y)
        assert any(tree.features.size > 0 for tree in model.trees_)

    def test_split_never_selects_out_of_range_bin(self, rng):
        """Regression guard: score noise must not promote no-op splits
        whose bin index exceeds a feature's real edge count."""
        # One feature with 2 distinct values amid many rich features.
        X = rng.normal(size=(60, 10))
        X[:, 0] = (X[:, 0] > 0).astype(float)
        y = X[:, 0] + X[:, 1] + rng.normal(scale=0.1, size=60)
        for seed in range(5):
            model = ObliviousBoostingRegressor(
                n_estimators=10, random_state=seed
            ).fit(X, y)  # IndexError before the fix
            assert np.all(np.isfinite(model.predict(X)))
