"""CV+ and Jackknife+ conformal intervals (extension beyond the paper).

Split CP/CQR sacrifice 25 % of an already tiny 156-chip dataset to
calibration.  CV+ (Barber et al., 2021) avoids that: every sample is
scored by the fold model that did *not* train on it, and test intervals
aggregate over fold models.  The guarantee is slightly weaker
(``1 − 2α`` worst case, ``≈ 1 − α`` in practice) but no data is wasted --
the trade-off quantified by the ``abl-cvplus`` benchmark.

We implement the practical quantile-form of CV+: for each test point the
interval is

.. math::

    \\Big[\\,\\tilde Q_{\\alpha}\\big(\\hat\\mu_{-k(i)}(x) - R_i\\big),\\
          \\tilde Q_{1-\\alpha}\\big(\\hat\\mu_{-k(i)}(x) + R_i\\big)\\Big]

over calibration residuals :math:`R_i` paired with their out-of-fold
model's prediction at ``x``, using finite-sample-corrected empirical
quantiles.  Jackknife+ is the ``K = n`` special case.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
    clone,
)

__all__ = ["CVPlusRegressor", "JackknifePlusRegressor"]


def _upper_cv_quantile(values: np.ndarray, alpha: float) -> np.ndarray:
    """Row-wise ceil((n+1)(1−alpha))-th smallest value of a 2-D array."""
    n = values.shape[1]
    rank = min(math.ceil((n + 1) * (1.0 - alpha)), n)
    return np.partition(values, rank - 1, axis=1)[:, rank - 1]


class CVPlusRegressor(BaseRegressor):
    """K-fold CV+ conformal intervals around a point regressor.

    Parameters
    ----------
    estimator:
        Unfitted point regressor template; ``n_folds`` clones are fitted.
    alpha:
        Target miscoverage.
    n_folds:
        Number of cross-validation folds (2 ≤ K ≤ n).
    random_state:
        Seed for the fold assignment.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        n_folds: int = 5,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if n_folds < 2:
            raise ValueError(f"n_folds must be >= 2, got {n_folds}")
        self.estimator = estimator
        self.alpha = alpha
        self.n_folds = n_folds
        self.random_state = random_state
        self.fold_models_: Optional[List[BaseRegressor]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CVPlusRegressor":
        X, y = check_X_y(X, y)
        n = X.shape[0]
        if self.n_folds > n:
            raise ValueError(f"n_folds={self.n_folds} exceeds n_samples={n}")
        rng = check_random_state(self.random_state)
        assignment = rng.permutation(n) % self.n_folds

        fold_models: List[BaseRegressor] = []
        residuals = np.empty(n)
        fold_of_sample = np.empty(n, dtype=np.int64)
        for k in range(self.n_folds):
            held_out = assignment == k
            model = clone(self.estimator).fit(X[~held_out], y[~held_out])
            fold_models.append(model)
            residuals[held_out] = np.abs(
                y[held_out] - model.predict(X[held_out])
            )
            fold_of_sample[held_out] = k

        self.fold_models_ = fold_models
        self.residuals_ = residuals
        self.fold_of_sample_ = fold_of_sample
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over the fold models."""
        check_fitted(self, "fold_models_")
        stacked = np.stack([model.predict(X) for model in self.fold_models_])
        return stacked.mean(axis=0)

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """CV+ interval from out-of-fold residual/prediction pairs."""
        check_fitted(self, "fold_models_")
        predictions = np.stack(
            [model.predict(X) for model in self.fold_models_]
        )  # (K, n_test)
        # Pair residual i with its out-of-fold model's test prediction.
        per_sample_pred = predictions[self.fold_of_sample_]  # (n_cal, n_test)
        lower_candidates = (per_sample_pred - self.residuals_[:, None]).T
        upper_candidates = (per_sample_pred + self.residuals_[:, None]).T
        lower = -_upper_cv_quantile(-lower_candidates, self.alpha)
        upper = _upper_cv_quantile(upper_candidates, self.alpha)
        # Degenerate tiny-n corner: ranks can cross; collapse to midpoint.
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)


class JackknifePlusRegressor(CVPlusRegressor):
    """Leave-one-out CV+ (Jackknife+): ``K = n`` fold models.

    The strongest data reuse -- every model trains on ``n − 1`` chips --
    at the price of ``n`` model fits.  Only sensible for cheap estimators
    (linear regression) on the paper's data sizes.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        random_state: Optional[int] = None,
    ) -> None:
        # n_folds is fixed at fit time to the sample count; initialise the
        # parent with the minimum legal value as a placeholder.
        super().__init__(estimator, alpha=alpha, n_folds=2, random_state=random_state)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "JackknifePlusRegressor":
        X, y = check_X_y(X, y)
        self.n_folds = X.shape[0]
        return super().fit(X, y)
