"""Seeded REP2xx fixture: concurrency/determinism violations.

Analyzed statically by the engine tests -- never imported at runtime.
"""
