"""Chip and population views over the latent silicon state.

:class:`ChipPopulation` bundles the three latent samplers' outputs
(process, aging, defects) for one generated lot; :class:`Chip` is a
single-chip convenience view used by examples and diagnostics.  Neither
holds measurements -- those live in
:class:`~repro.silicon.dataset.SiliconDataset` -- so the latent truth and
the observable data stay cleanly separated (a predictor can never
accidentally peek at ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.silicon.aging import AgedPopulation
from repro.silicon.defects import DefectPopulation
from repro.silicon.process import ProcessSample

__all__ = ["Chip", "ChipPopulation"]


@dataclass(frozen=True)
class ChipPopulation:
    """Latent state of a generated lot of chips."""

    process: ProcessSample
    aging: AgedPopulation
    defects: DefectPopulation

    def __post_init__(self) -> None:
        n = self.process.n_chips
        if self.aging.n_chips != n or self.defects.n_chips != n:
            raise ValueError(
                "process/aging/defects describe different population sizes: "
                f"{n}, {self.aging.n_chips}, {self.defects.n_chips}"
            )

    @property
    def n_chips(self) -> int:
        return self.process.n_chips

    def chip(self, index: int) -> "Chip":
        """Single-chip view by population index."""
        if not 0 <= index < self.n_chips:
            raise IndexError(
                f"chip index {index} out of range for {self.n_chips} chips"
            )
        return Chip(population=self, index=index)

    def __iter__(self):
        return (self.chip(i) for i in range(self.n_chips))

    def __len__(self) -> int:
        return self.n_chips


@dataclass(frozen=True)
class Chip:
    """One chip's latent state, read through its population."""

    population: ChipPopulation
    index: int

    @property
    def vth_shift(self) -> float:
        """Global threshold-voltage deviation (V)."""
        return float(self.population.process.vth_shift[self.index])

    @property
    def leff_shift(self) -> float:
        """Normalised channel-length deviation."""
        return float(self.population.process.leff_shift[self.index])

    @property
    def leakage_factor(self) -> float:
        """Log-normal leakage multiplier."""
        return float(self.population.process.leakage_factor[self.index])

    @property
    def is_defective(self) -> bool:
        """Whether the chip carries a latent defect."""
        return bool(self.population.defects.mask[self.index])

    @property
    def defect_severity(self) -> float:
        """Time-zero room-temperature defect Vmin penalty (V); 0 if healthy."""
        return float(self.population.defects.severity[self.index])

    def aged_vth_shift(self, hours: float) -> float:
        """Accumulated ΔVth after ``hours`` of stress (V)."""
        return float(self.population.aging.vth_shift_at(hours)[self.index])

    def speed_grade(self) -> str:
        """Coarse binning label derived from the global Vth shift.

        Negative shift = fast silicon (leaky, low Vmin), positive = slow.
        Thresholds at ±1 population sigma assuming the default process
        model; intended for human-readable summaries only.
        """
        if self.vth_shift < -0.010:
            return "fast"
        if self.vth_shift > 0.010:
            return "slow"
        return "typical"
