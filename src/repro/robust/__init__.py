"""Robust serving: fault injection, graceful degradation, drift monitoring.

The paper promises *reliable* Vmin intervals; this package is what makes
that promise survive contact with a test floor.  It has four layers,
each usable on its own:

* :mod:`repro.robust.faults` -- seeded, composable fault injectors
  (dead/stuck sensors, aging drift, temperature offset, noise bursts,
  row dropout), the declarative :class:`FaultCampaign` severity
  sweep used by the stress harness and CI, and the *execution*-fault
  injectors (:class:`TaskCrashFault`, :class:`TaskHangFault`) that
  crash or hang grid workers to exercise :mod:`repro.runtime`;
* :mod:`repro.robust.guard` / :mod:`repro.robust.imputation` -- the
  input-sanitization front-end: train-time statistic capture, per-entry
  health masks, bounded median imputation;
* :mod:`repro.robust.fallback` -- graceful degradation semantics:
  :class:`DegradationPolicy`, interval inflation, and the structured
  :class:`DegradedPrediction` result;
* :mod:`repro.robust.monitoring` -- the rolling empirical-coverage
  monitor whose alarms trigger online recalibration.

:class:`RobustVminFlow` (:mod:`repro.robust.flow`) wires all four
around the paper's :class:`~repro.flow.pipeline.VminPredictionFlow`.
"""

from repro.robust.fallback import (
    DegradationPolicy,
    DegradationStatus,
    DegradedPrediction,
    inflate_intervals,
)
from repro.robust.faults import (
    AgingDrift,
    DeadSensors,
    ExecutionFault,
    FaultCampaign,
    FaultInjector,
    FaultScenario,
    NoiseBurst,
    RowDropout,
    StuckSensors,
    TaskCrashFault,
    TaskHangFault,
    TemperatureOffset,
    column_scales,
)
from repro.robust.flow import RobustVminFlow
from repro.robust.guard import FeatureHealthGuard, HealthReport
from repro.robust.imputation import TrainStatImputer
from repro.robust.monitoring import CoverageAlarm, CoverageMonitor, CoverageTransition

__all__ = [
    "AgingDrift",
    "CoverageAlarm",
    "CoverageMonitor",
    "CoverageTransition",
    "DeadSensors",
    "DegradationPolicy",
    "DegradationStatus",
    "DegradedPrediction",
    "ExecutionFault",
    "FaultCampaign",
    "FaultInjector",
    "FaultScenario",
    "FeatureHealthGuard",
    "HealthReport",
    "NoiseBurst",
    "RobustVminFlow",
    "RowDropout",
    "StuckSensors",
    "TaskCrashFault",
    "TaskHangFault",
    "TemperatureOffset",
    "TrainStatImputer",
    "column_scales",
    "inflate_intervals",
]
