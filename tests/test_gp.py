"""Tests for Gaussian process regression."""

import numpy as np
import pytest
from scipy.linalg import cho_factor, cho_solve

from repro.models.gp import GaussianProcessRegressor
from repro.models.kernels import ConstantKernel, RBFKernel, WhiteKernel


@pytest.fixture()
def smooth_data(rng):
    X = np.linspace(-3, 3, 40).reshape(-1, 1)
    y = np.sin(X[:, 0]) + rng.normal(scale=0.05, size=40)
    return X, y


class TestPosterior:
    def test_matches_closed_form_posterior_mean(self, rng):
        """Fixed kernel + no optimisation must equal textbook GPR."""
        X = rng.normal(size=(15, 2))
        y = rng.normal(size=15)
        kernel = RBFKernel(1.3)
        model = GaussianProcessRegressor(
            kernel=kernel, alpha=0.1, optimizer=None, normalize_y=False
        ).fit(X, y)
        X_test = rng.normal(size=(5, 2))

        K = kernel(X) + 0.1 * np.eye(15)
        expected = kernel(X_test, X) @ cho_solve(cho_factor(K), y)
        np.testing.assert_allclose(model.predict(X_test), expected, atol=1e-10)

    def test_interpolates_noise_free_data(self, rng):
        X = rng.uniform(-2, 2, size=(20, 1))
        y = np.sin(2 * X[:, 0])
        model = GaussianProcessRegressor(alpha=1e-10, random_state=0).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-3)

    def test_predictive_std_smaller_near_data(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor(random_state=0).fit(X, y)
        _, std_near = model.predict(np.array([[0.0]]), return_std=True)
        _, std_far = model.predict(np.array([[10.0]]), return_std=True)
        assert std_far[0] > std_near[0]

    def test_optimisation_improves_marginal_likelihood(self, smooth_data):
        X, y = smooth_data
        fixed = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(5.0) + WhiteKernel(0.5),
            optimizer=None,
        ).fit(X, y)
        tuned = GaussianProcessRegressor(
            kernel=ConstantKernel(1.0) * RBFKernel(5.0) + WhiteKernel(0.5),
            n_restarts=1,
            random_state=0,
        ).fit(X, y)
        assert tuned.log_marginal_likelihood_ >= fixed.log_marginal_likelihood_

    def test_normalize_y_handles_large_offsets(self, rng):
        X = rng.normal(size=(30, 1))
        y = 0.56 + 0.01 * X[:, 0]  # Vmin-like scale: ~560 mV offset
        model = GaussianProcessRegressor(random_state=0).fit(X, y)
        prediction = model.predict(X)
        assert np.abs(prediction - y).max() < 0.005


class TestIntervals:
    def test_interval_widens_with_smaller_alpha(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor(random_state=0).fit(X, y)
        lo90, hi90 = model.predict_interval(X, alpha=0.1)
        lo99, hi99 = model.predict_interval(X, alpha=0.01)
        assert np.all(hi99 - lo99 >= hi90 - lo90)

    def test_interval_covers_on_gaussian_data(self, rng):
        X = rng.normal(size=(150, 2))
        y = X[:, 0] + rng.normal(scale=0.3, size=150)
        model = GaussianProcessRegressor(random_state=0).fit(X[:100], y[:100])
        lo, hi = model.predict_interval(X[100:], alpha=0.1)
        coverage = np.mean((y[100:] >= lo) & (y[100:] <= hi))
        # On in-distribution Gaussian data GP intervals are roughly honest.
        assert coverage > 0.75

    def test_interval_rejects_bad_alpha(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor(random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="alpha"):
            model.predict_interval(X, alpha=1.5)


class TestValidation:
    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            GaussianProcessRegressor(alpha=-1.0)

    def test_rejects_unknown_optimizer(self):
        with pytest.raises(ValueError, match="optimizer"):
            GaussianProcessRegressor(optimizer="adam")

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            GaussianProcessRegressor().predict(np.ones((2, 2)))

    def test_predict_rejects_wrong_width(self, smooth_data):
        X, y = smooth_data
        model = GaussianProcessRegressor(random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.ones((3, 4)))

    def test_deterministic_given_seed(self, smooth_data):
        X, y = smooth_data
        a = GaussianProcessRegressor(random_state=5, n_restarts=2).fit(X, y)
        b = GaussianProcessRegressor(random_state=5, n_restarts=2).fit(X, y)
        np.testing.assert_allclose(a.predict(X), b.predict(X))
