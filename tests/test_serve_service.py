"""Tests for the fault-tolerant serving service.

Covers the four service contracts from the ISSUE: verified loading
through the fallback chain, admission control with typed shedding,
deadline/retry handling of transient scoring faults, and the label
feedback loop driving READY <-> DEGRADED.
"""

import threading
import time

import numpy as np
import pytest

from repro.models import QuantileLinearRegression
from repro.robust import RobustVminFlow
from repro.robust.faults import TaskCrashFault
from repro.runtime import RetryPolicy, TaskTimeout
from repro.serve import (
    FallbackLevel,
    ModelRegistry,
    Overloaded,
    ReasonCode,
    RejectedRequest,
    ServiceState,
    ServingConfig,
    ServingResult,
    VminServingService,
)

N_PARAMETRIC = 4
N_MONITORS = 8
D = N_PARAMETRIC + N_MONITORS
PARAMETRIC = list(range(N_PARAMETRIC))
MONITORS = list(range(N_PARAMETRIC, D))
N_TRAIN = 200


def _make_data(n=400, seed=42):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    w = np.concatenate(
        [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
    )
    y = X @ w + rng.normal(scale=0.5, size=n)
    return X, y


def _fit_flow(X, y, **kwargs):
    kwargs.setdefault("base_model", QuantileLinearRegression())
    kwargs.setdefault("alpha", 0.1)
    kwargs.setdefault("random_state", 0)
    return RobustVminFlow(**kwargs).fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        fallback_columns=PARAMETRIC,
        monitor_columns=MONITORS,
    )


def _corrupt_bundle(registry, name):
    bundle = registry.versions_dir / name / "bundle.pkl"
    bundle.write_bytes(b"\x00" * 64 + bundle.read_bytes()[64:])


@pytest.fixture(scope="module")
def lot():
    """One fitted flow plus its held-out batch, shared read-only."""
    X, y = _make_data()
    return _fit_flow(X, y), X[N_TRAIN:], y[N_TRAIN:]


def _service(tmp_path, flow, **kwargs):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(flow)
    return VminServingService(registry, **kwargs)


class TestStartup:
    def test_clean_start_is_ready_on_current(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(tmp_path, flow)
        assert service.start() is ServiceState.READY
        assert service.fallback_level is FallbackLevel.CURRENT
        assert service.model_version == "v0001"
        assert "v0001" in service.verified_versions_
        assert service.health.history(ReasonCode.MODEL_VERIFIED)

    def test_empty_registry_without_fallback_stays_unready(self, tmp_path, lot):
        _, Xh, _ = lot
        service = VminServingService(ModelRegistry(tmp_path / "registry"))
        assert service.start() is ServiceState.STARTING
        assert service.fallback_level is FallbackLevel.REJECT
        with pytest.raises(RejectedRequest, match="not accepting"):
            service.score(Xh[:5])
        assert service.n_rejected_ == 1

    def test_empty_registry_serves_parametric_fallback(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = VminServingService(
            ModelRegistry(tmp_path / "registry"), parametric_model=flow
        )
        assert service.start() is ServiceState.DEGRADED
        assert service.fallback_level is FallbackLevel.PARAMETRIC
        result = service.score(Xh[:10])
        assert result.model_version == "<parametric>"
        assert service.health.history(ReasonCode.PARAMETRIC_FALLBACK)

    def test_corrupt_latest_rolls_back_with_audit(self, tmp_path, lot):
        flow, _, _ = lot
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(flow)
        registry.publish(flow)
        _corrupt_bundle(registry, "v0002")
        service = VminServingService(registry)
        assert service.start() is ServiceState.DEGRADED
        assert service.model_version == "v0001"
        assert service.fallback_level is FallbackLevel.LAST_KNOWN_GOOD
        assert registry.quarantined() == ["v0002"]
        reasons = {record.reason for record in service.health.downgrades()}
        assert ReasonCode.ARTIFACT_CORRUPT in reasons
        assert ReasonCode.ROLLED_BACK in reasons
        # The corrupt version must never have entered the audit set.
        assert "v0002" not in service.verified_versions_


class TestScoring:
    def test_score_returns_provenance(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        result = service.score(Xh[:25])
        assert isinstance(result, ServingResult)
        assert len(result.prediction) == 25
        assert result.model_version == "v0001"
        assert result.fallback_level is FallbackLevel.CURRENT
        assert result.state is ServiceState.READY
        assert result.attempts == 1
        assert result.wall_s >= 0.0
        assert result.model_version in service.verified_versions_
        assert service.n_served_ == 1

    def test_empty_batch_round_trips(self, tmp_path, lot):
        flow, _, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        result = service.score(np.empty((0, D)))
        assert len(result.prediction) == 0

    def test_transient_faults_are_retried(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(
            tmp_path,
            flow,
            config=ServingConfig(
                retry_policy=RetryPolicy(
                    max_attempts=3, backoff_base=0.001, backoff_max=0.002, seed=0
                )
            ),
        )
        service.start()
        # Every request crashes once, then succeeds -- exactly the
        # WorkerCrash shape run_in_subprocess produces.
        service.task_wrapper = TaskCrashFault(
            fraction=1.0, n_failures=1, seed=0
        ).wrap
        result = service.score(Xh[:10])
        assert result.attempts == 2
        assert service.n_served_ == 1 and service.n_rejected_ == 0

    def test_deadline_expiry_rejects_without_retries(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(
            tmp_path, flow, config=ServingConfig(deadline_s=0.005)
        )
        service.start()

        def slow(fn):
            def worker(item):
                time.sleep(0.02)
                return fn(item)

            return worker

        service.task_wrapper = slow
        with pytest.raises(TaskTimeout):
            service.score(Xh[:5])
        assert service.n_rejected_ == 1

    def test_drain_stops_admission(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        service.drain()
        assert service.state is ServiceState.DRAINING
        with pytest.raises(RejectedRequest):
            service.score(Xh[:5])
        service.drain()  # idempotent
        assert len(service.health.history(ReasonCode.DRAIN_REQUESTED)) == 1


class TestAdmissionControl:
    def test_overload_sheds_with_typed_error(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(
            tmp_path,
            flow,
            config=ServingConfig(
                max_in_flight=1, max_waiting=0, queue_timeout_s=0.05
            ),
        )
        service.start()
        in_flight = threading.Event()
        release = threading.Event()

        def blocking(fn):
            def worker(item):
                in_flight.set()
                assert release.wait(timeout=10.0)
                return fn(item)

            return worker

        service.task_wrapper = blocking
        holder = threading.Thread(target=service.score, args=(Xh[:5],))
        holder.start()
        try:
            assert in_flight.wait(timeout=10.0)
            with pytest.raises(Overloaded, match="in flight"):
                service.score(Xh[:5])
            assert service.n_overloaded_ == 1
        finally:
            release.set()
            holder.join(timeout=10.0)
        # The held request itself completed normally once released.
        assert service.n_served_ == 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_in_flight"):
            ServingConfig(max_in_flight=0)
        with pytest.raises(ValueError, match="max_waiting"):
            ServingConfig(max_waiting=-1)
        with pytest.raises(ValueError, match="queue_timeout_s"):
            ServingConfig(queue_timeout_s=-1.0)
        with pytest.raises(ValueError, match="deadline_s"):
            ServingConfig(deadline_s=0.0)


class TestHotSwap:
    def test_swap_picks_up_new_version(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        service.registry.publish(flow, reason="retrained")
        assert service.hot_swap() == "v0002"
        assert service.state is ServiceState.READY
        assert service.score(Xh[:5]).model_version == "v0002"
        swaps = service.health.history(ReasonCode.HOT_SWAP)
        assert len(swaps) == 1 and "v0001 -> v0002" in swaps[0].detail

    def test_swap_onto_corrupt_latest_degrades_and_recovers(self, tmp_path, lot):
        flow, _, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        service.registry.publish(flow)
        _corrupt_bundle(service.registry, "v0002")
        assert service.hot_swap() == "v0001"
        assert service.state is ServiceState.DEGRADED
        assert service.fallback_level is FallbackLevel.LAST_KNOWN_GOOD
        # A later good publish recovers the service on swap.  (The
        # corrupt v0002 sits in quarantine, so its number is reused.)
        recovered = service.registry.publish(flow).name
        assert recovered == "v0002"
        assert service.hot_swap() == recovered
        assert service.state is ServiceState.READY
        assert service.fallback_level is FallbackLevel.CURRENT

    def test_exhausted_registry_keeps_in_memory_model(self, tmp_path, lot):
        flow, Xh, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        _corrupt_bundle(service.registry, "v0001")
        # The only on-disk version is corrupt, but the process still
        # holds a verified model: keep serving it rather than go dark.
        assert service.hot_swap() == "v0001"
        assert service.fallback_level is FallbackLevel.LAST_KNOWN_GOOD
        assert service.state is ServiceState.DEGRADED
        assert len(service.score(Xh[:5]).prediction) == 5

    def test_exhausted_registry_without_model_rejects(self, tmp_path):
        service = VminServingService(ModelRegistry(tmp_path / "registry"))
        service.start()
        with pytest.raises(RejectedRequest, match="no servable model"):
            service.hot_swap()


class TestFeedbackLoop:
    def test_alarm_degrades_and_recovery_promotes(self, tmp_path):
        X, y = _make_data(n=1000, seed=23)
        flow = _fit_flow(
            X, y, monitor_min_observations=10, monitor_window=20
        )
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(flow)
        service = VminServingService(registry)
        service.start()
        Xh, yh = X[N_TRAIN:], y[N_TRAIN:]

        # Shifted labels: coverage collapses, the monitor alarms, and
        # the service degrades with the alarm recorded as the reason.
        shifted = yh + 2.0
        for start in range(0, 200, 10):
            service.observe(Xh[start : start + 10], shifted[start : start + 10])
            if service.state is ServiceState.DEGRADED:
                break
        assert service.state is ServiceState.DEGRADED
        assert service.health.history(ReasonCode.COVERAGE_ALARM)

        # Clean labels after adaptive widening: coverage recovers and
        # the service promotes itself back to READY.
        for start in range(200, 800, 10):
            service.observe(Xh[start : start + 10], yh[start : start + 10])
            if service.state is ServiceState.READY:
                break
        assert service.state is ServiceState.READY
        recovered = service.health.history(ReasonCode.COVERAGE_RECOVERED)
        assert recovered and "coverage" in recovered[-1].detail

    def test_observe_zero_labels_is_noop(self, tmp_path, lot):
        flow, _, _ = lot
        service = _service(tmp_path, flow)
        service.start()
        assert service.observe(np.empty((0, D)), np.empty(0)) is None
        assert service.state is ServiceState.READY

    def test_observe_without_model_rejects(self, tmp_path):
        service = VminServingService(ModelRegistry(tmp_path / "registry"))
        service.start()
        with pytest.raises(RejectedRequest, match="observe"):
            service.observe(np.empty((0, D)), np.empty(0))
