"""The reprolint engine: file collection, dispatch, suppressions.

The engine owns everything rules should not have to care about:

* walking directories for ``.py`` files and classifying each as
  ``"src"`` or ``"test"`` (rules opt into roles via ``Rule.scopes``),
* parsing each file once and annotating parent links on the tree,
* a single shared AST walk with per-node-type dispatch to every
  enabled rule (rules register handlers by defining ``visit_<Type>``),
* ``# reprolint: disable=RULE`` inline suppressions, collected from the
  token stream so they work on any line, and
* deterministic ordering of the final diagnostic list.

Files that fail to parse yield a single ``REP000`` parse-error
diagnostic instead of crashing the run.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import PARSE_ERROR_ID, Diagnostic
from repro.devtools.rules.base import Rule

__all__ = [
    "LintEngine",
    "ModuleContext",
    "annotate_parents",
    "classify_role",
    "collect_files",
    "collect_suppressions",
    "lint_paths",
    "lint_source",
]

PARENT_ATTR = "_reprolint_parent"

_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\-\s]+)", re.IGNORECASE
)


def classify_role(path: str, config: Optional[LintConfig] = None) -> str:
    """Classify ``path`` as ``"src"`` or ``"test"``.

    A file is a test when any path component matches one of the
    configured test directory names (default ``tests``) or its basename
    looks like ``test_*.py`` / ``conftest.py``.  Everything else is
    held to the stricter ``src`` contract.
    """
    config = config or LintConfig()
    parts = Path(path).parts
    if any(part in config.test_dirs for part in parts[:-1]):
        return "test"
    basename = Path(path).name
    if basename.startswith("test_") or basename == "conftest.py":
        return "test"
    return "src"


def collect_files(paths: Sequence[str], config: Optional[LintConfig] = None) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; config ``exclude`` globs are
    matched against the path as given (and its POSIX form), so both
    ``src/repro/legacy/*`` and absolute patterns behave.  A path that
    does not exist raises ``FileNotFoundError`` -- the CLI turns that
    into exit code 2.
    """
    config = config or LintConfig()
    found: List[str] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_dir():
            found.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(str(path))
    return [p for p in found if not config.is_excluded(p)]


def collect_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line numbers to the rule ids/names suppressed on that line.

    Recognises ``# reprolint: disable=REP102`` and comma-separated
    lists; the special token ``all`` silences every rule for the line.
    Comments are read from the token stream, so suppressions attached
    to continuation lines or after code both work.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION_RE.search(token.string)
            if not match:
                continue
            names = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            line = token.start[0]
            suppressions[line] = suppressions.get(line, frozenset()) | names
    except tokenize.TokenError:
        # Unterminated strings etc.: the parse-error diagnostic covers it.
        pass
    return suppressions


@dataclass
class ModuleContext:
    """Everything a rule may need to know about the module being linted."""

    path: str
    source: str
    tree: ast.Module
    role: str = "src"
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """Return whether an inline comment silences ``diagnostic``."""
        active = self.suppressions.get(diagnostic.line)
        if not active:
            return False
        return bool(
            {"all", diagnostic.rule_id, diagnostic.rule_name} & active
        )


def annotate_parents(tree: ast.Module) -> None:
    """Attach a parent link to every node (rules use it for placement)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, PARENT_ATTR, node)


class LintEngine:
    """Run a set of rules over modules with shared single-pass dispatch."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        config: Optional[LintConfig] = None,
    ) -> None:
        self.config = config or LintConfig()
        if rules is None:
            # Imported lazily: rule modules import ModuleContext from this
            # module, so a top-level registry import would be circular.
            from repro.devtools.rules import ALL_RULES

            selected = list(ALL_RULES)
        else:
            selected = list(rules)
        self.rules: Tuple[Rule, ...] = tuple(
            rule() if isinstance(rule, type) else rule
            for rule in selected
            if self.config.rule_enabled(
                getattr(rule, "rule_id", ""), getattr(rule, "name", "")
            )
        )
        # Dispatch table: node type -> [(rule, bound handler), ...].
        self._dispatch: Dict[type, List[Tuple[Rule, str]]] = {}
        for rule in self.rules:
            for node_type, method_names in rule.handlers().items():
                bucket = self._dispatch.setdefault(node_type, [])
                bucket.extend((rule, name) for name in method_names)

    def lint_source(
        self, source: str, path: str = "<snippet>", role: Optional[str] = None
    ) -> List[Diagnostic]:
        """Lint a source string; the workhorse behind :meth:`lint_files`."""
        if role is None:
            role = classify_role(path, self.config)
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Diagnostic(
                    path=path,
                    line=error.lineno or 1,
                    column=(error.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    rule_name="parse-error",
                    message=f"file could not be parsed: {error.msg}",
                )
            ]
        annotate_parents(tree)
        context = ModuleContext(
            path=path,
            source=source,
            tree=tree,
            role=role,
            suppressions=collect_suppressions(source),
        )
        # Scoped config can narrow the rule set per path (the globally
        # filtered ``self.rules`` is the ceiling; scopes only veto).
        active = [
            rule
            for rule in self.rules
            if rule.applies_to(role)
            and self.config.rule_enabled_for(path, rule.rule_id, rule.name)
        ]
        for rule in active:
            rule.start_module(context)

        findings: List[Diagnostic] = []
        active_ids = {id(rule) for rule in active}
        for node in ast.walk(tree):
            handlers = self._dispatch.get(type(node))
            if not handlers:
                continue
            for rule, method_name in handlers:
                if id(rule) not in active_ids:
                    continue
                produced = getattr(rule, method_name)(node, context)
                if produced:
                    findings.extend(produced)
        for rule in active:
            findings.extend(rule.finish_module(context))

        findings = [d for d in findings if not context.is_suppressed(d)]
        return sorted(findings, key=Diagnostic.sort_key)

    def lint_files(self, files: Iterable[str]) -> List[Diagnostic]:
        """Lint each file on disk; unreadable files raise ``OSError``."""
        findings: List[Diagnostic] = []
        for file_path in files:
            source = Path(file_path).read_text(encoding="utf-8")
            findings.extend(self.lint_source(source, path=file_path))
        return sorted(findings, key=Diagnostic.sort_key)


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint files and directories; the programmatic one-call entry point."""
    config = config or LintConfig()
    engine = LintEngine(rules=rules, config=config)
    return engine.lint_files(collect_files(paths, config))


def lint_source(
    source: str,
    path: str = "<snippet>",
    role: Optional[str] = None,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Diagnostic]:
    """Lint one source string (rule unit tests and tooling use this)."""
    engine = LintEngine(rules=rules, config=config)
    return engine.lint_source(source, path=path, role=role)
