"""Render lint findings as human-readable text or machine-readable JSON.

Both reporters are pure functions from a diagnostic list to a string so
they stay trivially testable; the CLI decides where the string goes.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.devtools.diagnostics import Diagnostic

__all__ = ["render_json", "render_sarif", "render_text"]


def render_text(diagnostics: Sequence[Diagnostic], checked_files: int = 0) -> str:
    """GCC-style ``path:line:col: RULE [name] message`` lines plus summary."""
    lines: List[str] = [
        f"{d.location()}: {d.rule_id} [{d.rule_name}] {d.message}"
        for d in diagnostics
    ]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"found {len(diagnostics)} issue(s) in {checked_files} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"checked {checked_files} file(s): all clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], checked_files: int = 0) -> str:
    """Stable JSON document: ``{version, summary, diagnostics}``."""
    by_rule = Counter(d.rule_id for d in diagnostics)
    document = {
        "version": 1,
        "summary": {
            "checked_files": checked_files,
            "total": len(diagnostics),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "diagnostics": [d.as_dict() for d in diagnostics],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    tool_name: str = "reprolint",
    rules: Optional[Iterable[Any]] = None,
) -> str:
    """SARIF 2.1.0 document -- one run, one result per finding.

    ``rules`` is any iterable of objects exposing ``rule_id``, ``name``,
    ``summary`` and ``rationale`` (both lint and analysis rule classes
    qualify); they populate the driver's rule metadata so SARIF viewers
    can show the rationale next to each finding.
    """
    rule_entries: List[Dict[str, Any]] = []
    indexed: Dict[str, int] = {}
    for rule in rules or ():
        rule_id = getattr(rule, "rule_id", "")
        if not rule_id or rule_id in indexed:
            continue
        indexed[rule_id] = len(rule_entries)
        rule_entries.append(
            {
                "id": rule_id,
                "name": getattr(rule, "name", rule_id),
                "shortDescription": {"text": getattr(rule, "summary", "")},
                "fullDescription": {"text": getattr(rule, "rationale", "")},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    results: List[Dict[str, Any]] = []
    for diagnostic in diagnostics:
        result: Dict[str, Any] = {
            "ruleId": diagnostic.rule_id,
            "level": "warning",
            "message": {"text": f"[{diagnostic.rule_name}] {diagnostic.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(diagnostic.path).as_posix()
                        },
                        "region": {
                            "startLine": max(diagnostic.line, 1),
                            # SARIF columns are 1-based; ours are 0-based.
                            "startColumn": diagnostic.column + 1,
                        },
                    }
                }
            ],
        }
        if diagnostic.rule_id in indexed:
            result["ruleIndex"] = indexed[diagnostic.rule_id]
        results.append(result)
    document = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
