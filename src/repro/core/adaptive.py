"""Online / adaptive conformal inference for in-field deployment.

The paper's conclusion names embedding the predictor "in the in-field
systems to secure long-term reliability" as future work.  In the field,
chips age and the data distribution drifts, breaking the exchangeability
assumption behind split CP/CQR.  Adaptive Conformal Inference
(Gibbs & Candès, 2021) restores *long-run* coverage under arbitrary
drift by feedback control on the miscoverage level:

.. math::

    \\alpha_{t+1} = \\alpha_t + \\gamma\\,(\\alpha - \\mathrm{err}_t),

where ``err_t`` is 1 when the latest observed label escaped its interval.
When coverage falls behind, ``α_t`` drops and intervals widen; when the
predictor is over-covering, intervals tighten.

:class:`AdaptiveConformalPredictor` wraps a fitted conformal regressor
(anything with a recomputable margin from stored calibration scores) in
the streaming protocol: ``predict_interval`` → observe ``y`` → ``update``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.calibration import conformal_quantile
from repro.core.intervals import PredictionIntervals
from repro.core.scores import cqr_score
from repro.models.base import BaseRegressor, check_fitted, check_X_y
from repro.models.quantile import QuantileBandRegressor

__all__ = ["AdaptiveConformalPredictor"]


class AdaptiveConformalPredictor:
    """Streaming CQR with the Gibbs-Candès α update.

    Parameters
    ----------
    estimator:
        Unfitted quantile-capable template (as in
        :class:`~repro.core.cqr.ConformalizedQuantileRegressor`).
    alpha:
        Long-run target miscoverage.
    gamma:
        Adaptation step size; 0 disables adaptation (plain split CQR
        evaluated online).
    window:
        Number of most recent scores kept for quantile computation;
        ``None`` keeps all (growing calibration set).
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        gamma: float = 0.05,
        window: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.estimator = estimator
        self.alpha = alpha
        self.gamma = gamma
        self.window = window
        self.band_: Optional[QuantileBandRegressor] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaptiveConformalPredictor":
        """Fit the quantile band and seed the score history from ``(X, y)``.

        Unlike split CQR there is no held-out calibration split: the
        streaming updates provide calibration, and the initial in-sample
        scores merely warm-start the quantile (the long-run guarantee
        comes from adaptation, not from the seed).
        """
        X, y = check_X_y(X, y)
        self.band_ = QuantileBandRegressor(self.estimator, alpha=self.alpha)
        self.band_.fit(X, y)
        lower, upper = self.band_.predict_interval(X)
        self._scores: List[float] = list(cqr_score(y, lower, upper))
        self._alpha_t = self.alpha
        self.alpha_history_: List[float] = [self.alpha]
        self.error_history_: List[bool] = []
        return self

    @classmethod
    def from_fitted(
        cls,
        band,
        scores,
        alpha: float = 0.1,
        gamma: float = 0.05,
        window: Optional[int] = None,
    ) -> "AdaptiveConformalPredictor":
        """Warm-start the streaming predictor around an already-fitted band.

        This is the recalibration hook used by
        :class:`repro.robust.RobustVminFlow`: a deployed split-CQR model
        already owns a fitted quantile band and a set of calibration
        scores, and re-fitting from scratch on a test floor is wasteful.
        ``from_fitted`` adopts both directly, so the Gibbs-Candès updates
        begin from the deployed model's state.

        Parameters
        ----------
        band:
            A fitted band exposing ``predict_interval(X) -> (lower, upper)``
            (e.g. ``ConformalizedQuantileRegressor.band_``).
        scores:
            Seed CQR calibration scores (e.g.
            ``ConformalizedQuantileRegressor.calibration_scores_``).
        alpha, gamma, window:
            As in the constructor.
        """
        if not hasattr(band, "predict_interval"):
            raise TypeError(
                f"band of type {type(band).__name__} has no predict_interval"
            )
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError("scores must be a non-empty 1-D array")
        if not np.all(np.isfinite(scores)):
            raise ValueError("scores must be finite")
        predictor = cls(
            getattr(band, "template", None), alpha=alpha, gamma=gamma, window=window
        )
        predictor.band_ = band
        predictor._scores = [float(s) for s in scores]
        predictor._alpha_t = alpha
        predictor.alpha_history_ = [alpha]
        predictor.error_history_ = []
        return predictor

    @property
    def alpha_t(self) -> float:
        """Current adapted miscoverage level."""
        check_fitted(self, "band_")
        return self._alpha_t

    def _current_scores(self) -> np.ndarray:
        scores = self._scores
        if self.window is not None:
            scores = scores[-self.window :]
        return np.asarray(scores)

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Interval at the *current* adapted level ``α_t``."""
        check_fitted(self, "band_")
        scores = self._current_scores()
        # alpha_t may drift outside (0, 1) under heavy drift; clamp the
        # quantile lookup while keeping the raw alpha_t for the dynamics.
        effective = float(np.clip(self._alpha_t, 1e-6, 1.0 - 1e-6))
        correction = conformal_quantile(scores, effective)
        if not np.isfinite(correction):
            # Not enough history for the requested level: fall back to the
            # most conservative finite correction (the max score).
            correction = float(np.max(scores))
        lower, upper = self.band_.predict_interval(X)
        lower = lower - correction
        upper = upper + correction
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)

    def update(self, X: np.ndarray, y: np.ndarray) -> None:
        """Observe true labels for ``X`` and adapt ``α_t``.

        Each observed sample contributes one α update (processed in
        order) and its CQR score joins the calibration history.
        """
        X, y = check_X_y(X, y)
        intervals = self.predict_interval(X)
        covered = intervals.contains(y)
        lower, upper = self.band_.predict_interval(X)
        new_scores = cqr_score(y, lower, upper)
        for score, was_covered in zip(new_scores, covered):
            error = 0.0 if was_covered else 1.0
            self._alpha_t = self._alpha_t + self.gamma * (self.alpha - error)
            self._scores.append(float(score))
            self.alpha_history_.append(self._alpha_t)
            self.error_history_.append(bool(not was_covered))

    def long_run_coverage(self) -> float:
        """Fraction of streamed labels covered so far."""
        if not self.error_history_:
            raise RuntimeError("no updates observed yet")
        return 1.0 - float(np.mean(self.error_history_))
