"""Ablation -- calibration fraction (paper holds out 25 %).

Sweeps the CQR train/calibration split over {0.1, 0.25, 0.4, 0.5} for
CQR-LR at 25 degC / 0 h.  The trade-off being quantified: a small
calibration set makes the conformal quantile coarse and high-variance
(with M < ceil(1/alpha) − 1 it is outright infinite), while a large one
starves the quantile band of training chips and widens the raw band.
The paper's 25 % (≈29 chips per fold) sits near the sweet spot.
"""

from __future__ import annotations

from conftest import publish

from repro.core.calibration import effective_coverage_level
from repro.eval.experiments import run_region_experiment
from repro.eval.reporting import format_table

FRACTIONS = (0.1, 0.25, 0.4, 0.5)


def _render(dataset, profile) -> str:
    rows = []
    for fraction in FRACTIONS:
        result = run_region_experiment(
            dataset,
            "CQR LR",
            25.0,
            0,
            calibration_fraction=fraction,
            profile=profile,
        )
        # Calibration size within one CV training fold (~3/4 of the lot).
        n_cal = int(round(fraction * dataset.n_chips * (profile.n_folds - 1) / profile.n_folds))
        rows.append(
            [
                fraction,
                n_cal,
                effective_coverage_level(max(n_cal, 1), 0.1) * 100.0,
                result.coverage * 100.0,
                result.width,
            ]
        )
    return format_table(
        ["Cal fraction", "Cal chips", "Guarantee (%)", "Coverage (%)", "Len (mV)"],
        rows,
        title="Ablation | CQR calibration fraction (CQR LR, 25C, 0h, alpha=0.1)",
    )


def test_ablation_split(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("ablation_split", text)
