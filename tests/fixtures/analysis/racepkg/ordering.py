"""REP203 fixture: set iteration feeding ordered results."""


def accumulate_names(records):
    unique = {record.name for record in records}
    ordered = []
    for name in unique:  # REP203: for-loop over a set, appending
        ordered.append(name)
    return ordered


def render_report(tags):
    tag_set = set(tags)
    return ", ".join(tag_set)  # REP203: join over a set


def first_two(labels):
    label_set = frozenset(labels)
    return list(label_set)[:2]  # REP203: list() over a set


def widths(cells):
    cell_set = set(cells)
    return [cell.width for cell in cell_set]  # REP203: comprehension
