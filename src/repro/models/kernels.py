"""Covariance kernels for Gaussian process regression.

The paper's GP baseline (Section IV-C.1) uses a radial basis function
kernel whose hyper-parameters are fitted by maximising the marginal
likelihood.  This module provides the small kernel algebra required:

* :class:`RBFKernel` -- squared-exponential with a shared or per-dimension
  (ARD) length scale,
* :class:`MaternKernel` -- ν ∈ {0.5, 1.5, 2.5} family,
* :class:`ConstantKernel` / :class:`WhiteKernel` -- signal variance and
  observation noise,
* :class:`SumKernel` / :class:`ProductKernel` -- composition via ``+``/``*``.

Every kernel stores its tunable hyper-parameters in log space (``theta``)
so the GP's L-BFGS optimisation is unconstrained, mirroring scikit-learn's
design.  ``__call__(X, Z)`` returns the cross-covariance matrix; ``diag(X)``
returns the prior variances without building the full matrix.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "ConstantKernel",
    "Kernel",
    "MaternKernel",
    "ProductKernel",
    "RBFKernel",
    "SumKernel",
    "WhiteKernel",
]


class Kernel:
    """Abstract base: a positive-semidefinite covariance function."""

    # -- hyper-parameter vector (log space) --------------------------------
    @property
    def theta(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    @theta.setter
    def theta(self, value: np.ndarray) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def bounds(self) -> np.ndarray:
        """Log-space (low, high) bounds per hyper-parameter, shape (k, 2)."""
        raise NotImplementedError  # pragma: no cover - abstract

    def __call__(
        self, X: np.ndarray, Z: Optional[np.ndarray] = None
    ) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.diag(self(X))

    def clone_with_theta(self, theta: np.ndarray) -> "Kernel":
        import copy

        clone = copy.deepcopy(self)
        clone.theta = np.asarray(theta, dtype=np.float64)
        return clone

    # -- composition --------------------------------------------------------
    def __add__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(self, _as_kernel(other))

    def __radd__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(_as_kernel(other), self)

    def __mul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(self, _as_kernel(other))

    def __rmul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(_as_kernel(other), self)


def _as_kernel(value) -> "Kernel":
    if isinstance(value, Kernel):
        return value
    if isinstance(value, (int, float)):
        return ConstantKernel(float(value))
    raise TypeError(f"cannot interpret {value!r} as a kernel")


_LOG_BOUND = (math.log(1e-5), math.log(1e5))


class RBFKernel(Kernel):
    """Squared exponential kernel ``k(x, z) = exp(−‖x − z‖² / (2ℓ²))``.

    ``length_scale`` may be a scalar (isotropic) or a vector with one entry
    per input dimension (automatic relevance determination).  The paper's
    companion work uses ARD length scales as feature-significance
    indicators, so both modes are supported.
    """

    def __init__(self, length_scale=1.0) -> None:
        self.length_scale = np.atleast_1d(np.asarray(length_scale, dtype=np.float64))
        if np.any(self.length_scale <= 0):
            raise ValueError("length_scale entries must be positive")

    @property
    def anisotropic(self) -> bool:
        return self.length_scale.size > 1

    @property
    def theta(self) -> np.ndarray:
        return np.log(self.length_scale)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.size != self.length_scale.size:
            raise ValueError(
                f"theta has {value.size} entries, expected {self.length_scale.size}"
            )
        self.length_scale = np.exp(value)

    @property
    def bounds(self) -> np.ndarray:
        return np.tile(_LOG_BOUND, (self.length_scale.size, 1))

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Z = X if Z is None else np.asarray(Z, dtype=np.float64)
        scaled_X = X / self.length_scale
        scaled_Z = Z / self.length_scale
        squared = cdist(scaled_X, scaled_Z, metric="sqeuclidean")
        return np.exp(-0.5 * squared)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(X).shape[0])


class MaternKernel(Kernel):
    """Matérn kernel with smoothness ν ∈ {0.5, 1.5, 2.5}.

    ν=0.5 is the exponential (Ornstein-Uhlenbeck) kernel; ν→∞ recovers the
    RBF.  Only the three closed-form values are supported -- they cover all
    practical use and avoid Bessel-function evaluation.
    """

    _SUPPORTED_NU = (0.5, 1.5, 2.5)

    def __init__(self, length_scale: float = 1.0, nu: float = 1.5) -> None:
        if length_scale <= 0:
            raise ValueError(f"length_scale must be positive, got {length_scale}")
        if nu not in self._SUPPORTED_NU:
            raise ValueError(f"nu must be one of {self._SUPPORTED_NU}, got {nu}")
        self.length_scale = float(length_scale)
        self.nu = float(nu)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.length_scale)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.size != 1:
            raise ValueError(f"theta must have 1 entry, got {value.size}")
        self.length_scale = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.array([_LOG_BOUND])

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Z = X if Z is None else np.asarray(Z, dtype=np.float64)
        distance = cdist(X, Z, metric="euclidean") / self.length_scale
        if self.nu == 0.5:
            return np.exp(-distance)
        if self.nu == 1.5:
            scaled = math.sqrt(3.0) * distance
            return (1.0 + scaled) * np.exp(-scaled)
        scaled = math.sqrt(5.0) * distance
        return (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.ones(np.asarray(X).shape[0])


class ConstantKernel(Kernel):
    """Constant covariance ``k(x, z) = value`` (signal variance when used
    multiplicatively)."""

    def __init__(self, value: float = 1.0) -> None:
        if value <= 0:
            raise ValueError(f"value must be positive, got {value}")
        self.value = float(value)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.value)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.size != 1:
            raise ValueError(f"theta must have 1 entry, got {value.size}")
        self.value = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.array([_LOG_BOUND])

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X)
        Z = X if Z is None else np.asarray(Z)
        return np.full((X.shape[0], Z.shape[0]), self.value)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(X).shape[0], self.value)


class WhiteKernel(Kernel):
    """Observation-noise kernel: ``noise_level`` on the diagonal, 0 off it.

    Cross-covariance between distinct sets is identically zero -- noise is
    independent per observation, so it never transfers to test points.
    """

    def __init__(self, noise_level: float = 1.0) -> None:
        if noise_level <= 0:
            raise ValueError(f"noise_level must be positive, got {noise_level}")
        self.noise_level = float(noise_level)

    @property
    def theta(self) -> np.ndarray:
        return np.array([math.log(self.noise_level)])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.atleast_1d(np.asarray(value, dtype=np.float64))
        if value.size != 1:
            raise ValueError(f"theta must have 1 entry, got {value.size}")
        self.noise_level = float(np.exp(value[0]))

    @property
    def bounds(self) -> np.ndarray:
        return np.array([(math.log(1e-10), math.log(1e2))])

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        X = np.asarray(X)
        if Z is None:
            return self.noise_level * np.eye(X.shape[0])
        Z = np.asarray(Z)
        return np.zeros((X.shape[0], Z.shape[0]))

    def diag(self, X: np.ndarray) -> np.ndarray:
        return np.full(np.asarray(X).shape[0], self.noise_level)


class _CompositeKernel(Kernel):
    """Shared theta-splitting machinery for sum/product kernels."""

    def __init__(self, left: Kernel, right: Kernel) -> None:
        self.left = left
        self.right = right

    def _split(self, theta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        n_left = self.left.theta.size
        return theta[:n_left], theta[n_left:]

    @property
    def theta(self) -> np.ndarray:
        return np.concatenate([self.left.theta, self.right.theta])

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=np.float64)
        expected = self.left.theta.size + self.right.theta.size
        if value.size != expected:
            raise ValueError(f"theta must have {expected} entries, got {value.size}")
        left_theta, right_theta = self._split(value)
        self.left.theta = left_theta
        self.right.theta = right_theta

    @property
    def bounds(self) -> np.ndarray:
        parts: List[np.ndarray] = []
        if self.left.theta.size:
            parts.append(np.atleast_2d(self.left.bounds))
        if self.right.theta.size:
            parts.append(np.atleast_2d(self.right.bounds))
        if not parts:
            return np.empty((0, 2))
        return np.vstack(parts)


class SumKernel(_CompositeKernel):
    """Pointwise sum of two kernels (e.g. signal + noise)."""

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        return self.left(X, Z) + self.right(X, Z)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) + self.right.diag(X)


class ProductKernel(_CompositeKernel):
    """Pointwise product of two kernels (e.g. variance-scaled RBF)."""

    def __call__(self, X: np.ndarray, Z: Optional[np.ndarray] = None) -> np.ndarray:
        return self.left(X, Z) * self.right(X, Z)

    def diag(self, X: np.ndarray) -> np.ndarray:
        return self.left.diag(X) * self.right.diag(X)
