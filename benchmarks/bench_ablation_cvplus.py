"""Ablation -- split CP vs CV+ vs Jackknife+ data reuse.

The paper's split CQR sacrifices 25 % of an already tiny lot to
calibration.  CV+ and Jackknife+ (Barber et al., 2021) reuse every chip
for both training and calibration at the cost of K (or n) model fits and
a slightly weaker worst-case guarantee.  This benchmark compares the
three wrappers around the same linear base model under the paper's
4-fold protocol.

Expected shape: all three reach ~90 % coverage; CV+/Jackknife+ tend to
produce slightly narrower or comparable intervals by using all data, at
a strictly higher fit cost (reported).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import publish

from repro.core import CVPlusRegressor, JackknifePlusRegressor, SplitConformalRegressor
from repro.eval.crossval import KFold, cross_validate_intervals
from repro.eval.reporting import format_table
from repro.features.selection import CFSSelectedRegressor
from repro.models import LinearRegression


def _render(dataset, profile) -> str:
    X_raw, _ = dataset.features(0)
    y = dataset.target(25.0, 0) * 1000.0
    kfold = KFold(n_splits=profile.n_folds, shuffle=True, random_state=0)

    # Selection lives inside the base estimator so every conformal wrapper
    # refits it on exactly the data its guarantee allows (see
    # CFSSelectedRegressor).
    def base():
        return CFSSelectedRegressor(LinearRegression(), k=10)

    candidates = {
        "Split CP (25% cal)": lambda: SplitConformalRegressor(
            base(), alpha=0.1, random_state=0
        ),
        "CV+ (5 folds)": lambda: CVPlusRegressor(
            base(), alpha=0.1, n_folds=5, random_state=0
        ),
        "Jackknife+": lambda: JackknifePlusRegressor(
            base(), alpha=0.1, random_state=0
        ),
    }

    rows = []
    for name, factory in candidates.items():
        start = time.perf_counter()

        def builder(X_train, y_train, factory=factory):
            return factory().fit(X_train, y_train)

        result = cross_validate_intervals(builder, X_raw, y, kfold)
        seconds = time.perf_counter() - start
        rows.append([name, result.coverage * 100.0, result.width, seconds])
    return format_table(
        ["Wrapper", "Coverage (%)", "Len (mV)", "CV wall time (s)"],
        rows,
        title="Ablation | conformal data-reuse strategy (linear base, 25C, 0h)",
    )


def test_ablation_cvplus(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("ablation_cvplus", text)
