"""Inter-procedural source-to-sink flow detection.

The pattern both the conformal-hygiene and determinism rules need is
"does a value from *source* reach a *sink call* -- possibly through
other functions".  This module composes the per-function
:class:`~repro.devtools.analysis.dataflow.TaintAnalysis` with the call
graph:

1. :func:`compute_param_leaks` -- a fixpoint over the project computing,
   for every function, which of its *parameters* can reach a sink
   (directly, or by being forwarded to another function whose summary
   already says so).  This is the one-level-at-a-time summarisation
   that lets a calibration array be caught "three calls away", across
   module boundaries, without whole-program path explosion.
2. :func:`find_source_flows` -- the reporting pass: taint rule-specific
   sources in every function and flag tainted arguments hitting a sink
   call or a leaking parameter position of a resolved callee.

Sinks are described by a :class:`SinkSpec`: terminal callee names
(``fit`` matches both ``model.fit(...)`` and a bare ``fit(...)``) plus
keyword-argument names that are sinks on *any* call (``seed=``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

from repro.devtools.analysis.callgraph import CallSite
from repro.devtools.analysis.dataflow import TaintAnalysis, TaintState
from repro.devtools.analysis.project import FunctionInfo
from repro.devtools.analysis.rules.base import ProjectContext

__all__ = [
    "FlowFinding",
    "SinkSpec",
    "compute_param_leaks",
    "find_source_flows",
]

Label = Hashable
ExprSources = Callable[[ast.expr], Iterable[Label]]
Seams = Optional[Callable[[ast.Call], Optional[Tuple[Iterable[Label], Iterable[int]]]]]


@dataclass(frozen=True)
class SinkSpec:
    """What counts as a sink for one rule."""

    call_names: FrozenSet[str] = frozenset()
    keyword_names: FrozenSet[str] = frozenset()
    exempt_receivers: FrozenSet[str] = frozenset()

    def is_sink_call(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in self.call_names
        if isinstance(func, ast.Attribute):
            if func.attr not in self.call_names:
                return False
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in self.exempt_receivers
            ):
                return False
            return True
        return False


@dataclass(frozen=True)
class FlowFinding:
    """One tainted value arriving at a sink."""

    function: FunctionInfo
    call: ast.Call
    labels: FrozenSet[Label]
    via: Optional[str] = None  # callee qualname when the sink is indirect


@dataclass
class _FunctionPass:
    """Bookkeeping for one function's taint run."""

    function: FunctionInfo
    analysis: TaintAnalysis
    sites_by_call: Dict[int, CallSite] = field(default_factory=dict)


def _call_sites_by_node(context: ProjectContext, qualname: str) -> Dict[int, CallSite]:
    return {
        id(site.node): site for site in context.callgraph.sites.get(qualname, [])
    }


def _iter_calls(stmt: ast.stmt) -> Iterable[ast.Call]:
    """Calls appearing in one statement, nested defs excluded."""

    def visit(node: ast.AST) -> Iterable[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from visit(child)

    return visit(stmt)


def _positional_slots(
    call: ast.Call, callee: Optional[FunctionInfo]
) -> List[Tuple[ast.expr, Optional[int]]]:
    """Map call arguments to callee parameter positions (best effort)."""
    slots: List[Tuple[ast.expr, Optional[int]]] = []
    for index, arg in enumerate(call.args):
        slots.append((arg, index if not isinstance(arg, ast.Starred) else None))
    if callee is not None:
        params = callee.params()
        for keyword in call.keywords:
            position = (
                params.index(keyword.arg)
                if keyword.arg in params
                else None
            )
            slots.append((keyword.value, position))
    else:
        slots.extend((keyword.value, None) for keyword in call.keywords)
    return slots


def compute_param_leaks(
    context: ProjectContext, sink: SinkSpec
) -> Dict[str, Set[int]]:
    """Fixpoint: parameter positions of each function that reach a sink."""
    leaks: Dict[str, Set[int]] = {q: set() for q in context.project.functions}
    passes: Dict[str, _FunctionPass] = {}

    def function_pass(qualname: str) -> Optional[_FunctionPass]:
        if qualname in passes:
            return passes[qualname]
        function = context.project.functions[qualname]
        if isinstance(function.node, ast.Lambda):
            return None
        params = function.params()
        initial: TaintState = {
            name: frozenset({("param", index)})
            for index, name in enumerate(params)
        }
        analysis = TaintAnalysis(
            context.cfg(qualname),
            expr_sources=lambda expr: (),
            initial=initial,
        )
        analysis.run()
        record = _FunctionPass(
            function=function,
            analysis=analysis,
            sites_by_call=_call_sites_by_node(context, qualname),
        )
        passes[qualname] = record
        return record

    changed = True
    while changed:
        changed = False
        for qualname in context.project.functions:
            record = function_pass(qualname)
            if record is None:
                continue
            found: Set[int] = set()

            def inspect(stmt: ast.stmt, state: TaintState) -> None:
                for call in _iter_calls(stmt):
                    site = record.sites_by_call.get(id(call))
                    callee_info = (
                        context.project.functions.get(site.callee)
                        if site and site.callee
                        else None
                    )
                    direct = sink.is_sink_call(call)
                    callee_leaks = (
                        leaks.get(site.callee, set())
                        if site and site.callee
                        else set()
                    )
                    for keyword in call.keywords:
                        if keyword.arg in sink.keyword_names:
                            for label in record.analysis.expr_labels(
                                keyword.value, state
                            ):
                                if isinstance(label, tuple) and label[0] == "param":
                                    found.add(label[1])
                    if not direct and not callee_leaks:
                        continue
                    for arg_expr, position in _positional_slots(call, callee_info):
                        labels = record.analysis.expr_labels(arg_expr, state)
                        if not labels:
                            continue
                        hits = direct or (
                            position is not None and position in callee_leaks
                        )
                        if not hits:
                            continue
                        for label in labels:
                            if isinstance(label, tuple) and label[0] == "param":
                                found.add(label[1])

            record.analysis.visit_statements(inspect)
            if found - leaks[qualname]:
                leaks[qualname] |= found
                changed = True
    return {q: positions for q, positions in leaks.items() if positions}


def find_source_flows(
    context: ProjectContext,
    expr_sources_for: Callable[[FunctionInfo], ExprSources],
    seams_for: Callable[[FunctionInfo], Seams],
    sink: SinkSpec,
    leaks: Dict[str, Set[int]],
    initial_for: Optional[Callable[[FunctionInfo], Optional[TaintState]]] = None,
) -> List[FlowFinding]:
    """Report every rule-source value reaching a sink, summaries included."""
    findings: List[FlowFinding] = []
    for qualname, function in context.project.functions.items():
        if isinstance(function.node, ast.Lambda):
            continue
        sources = expr_sources_for(function)
        analysis = TaintAnalysis(
            context.cfg(qualname),
            expr_sources=sources,
            call_result_positions=seams_for(function),
            initial=(initial_for(function) if initial_for else None) or {},
        )
        analysis.run()
        sites = _call_sites_by_node(context, qualname)

        def inspect(stmt: ast.stmt, state: TaintState) -> None:
            for call in _iter_calls(stmt):
                site = sites.get(id(call))
                callee_qualname = site.callee if site else None
                callee_info = (
                    context.project.functions.get(callee_qualname)
                    if callee_qualname
                    else None
                )
                direct = sink.is_sink_call(call)
                callee_leaks = leaks.get(callee_qualname or "", set())
                for keyword in call.keywords:
                    if keyword.arg in sink.keyword_names:
                        labels = analysis.expr_labels(keyword.value, state)
                        if labels:
                            findings.append(
                                FlowFinding(
                                    function=function, call=call, labels=labels
                                )
                            )
                if not direct and not callee_leaks:
                    continue
                for arg_expr, position in _positional_slots(call, callee_info):
                    labels = analysis.expr_labels(arg_expr, state)
                    if not labels:
                        continue
                    if direct:
                        findings.append(
                            FlowFinding(function=function, call=call, labels=labels)
                        )
                        break
                    if position is not None and position in callee_leaks:
                        findings.append(
                            FlowFinding(
                                function=function,
                                call=call,
                                labels=labels,
                                via=callee_qualname,
                            )
                        )
                        break

        analysis.visit_statements(inspect)
    return findings
