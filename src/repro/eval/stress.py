"""Stress-test harness: coverage/length degradation under fault campaigns.

The robustness claim of :mod:`repro.robust` is quantitative: under a
given fault campaign the served intervals should lose *bounded* coverage
relative to the clean baseline, paying for damage with width (inflation,
fallback) rather than with silent under-coverage.  This module measures
exactly that.  :func:`run_fault_campaign` serves one held-out lot through
a fitted :class:`~repro.robust.flow.RobustVminFlow` once clean and once
per fault scenario, and the resulting :class:`StressReport` tabulates
coverage, width, status, and inflation per scenario -- the robustness
analogue of the paper's Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.eval.reporting import format_table

__all__ = ["StressResult", "StressReport", "run_fault_campaign"]


@dataclass(frozen=True)
class StressResult:
    """Outcome of serving one fault scenario.

    Attributes
    ----------
    scenario, severity:
        Scenario identity (from the :class:`~repro.robust.faults.FaultScenario`).
    coverage, mean_width:
        Empirical coverage and average interval length (V) of the
        served intervals on the faulted batch.
    status:
        Served :class:`~repro.robust.fallback.DegradationStatus` value.
    inflation:
        Width multiplier the degradation policy charged.
    used_fallback:
        Whether the fallback model produced the band.
    unhealthy_fraction:
        Fraction of feature columns the guard flagged unhealthy.
    """

    scenario: str
    severity: float
    coverage: float
    mean_width: float
    status: str
    inflation: float
    used_fallback: bool
    unhealthy_fraction: float


@dataclass(frozen=True)
class StressReport:
    """Clean baseline plus per-scenario stress results.

    ``nominal_coverage`` / ``nominal_width`` come from serving the same
    batch with no faults injected; every :class:`StressResult` is read
    against them.
    """

    nominal_coverage: float
    nominal_width: float
    results: Tuple[StressResult, ...]

    def worst_coverage(self, scenario_prefix: Optional[str] = None) -> float:
        """Lowest served coverage, optionally restricted to scenarios
        whose name starts with ``scenario_prefix``."""
        selected = [
            r.coverage
            for r in self.results
            if scenario_prefix is None or r.scenario.startswith(scenario_prefix)
        ]
        if not selected:
            raise ValueError(
                f"no scenario matches prefix {scenario_prefix!r}"
            )
        return float(min(selected))

    def coverage_drop(self, scenario_prefix: Optional[str] = None) -> float:
        """Worst coverage loss versus nominal (positive = degradation)."""
        return self.nominal_coverage - self.worst_coverage(scenario_prefix)

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace report table (coverage in %, width in mV)."""
        rows = [
            [
                "(nominal)",
                0.0,
                "ok",
                self.nominal_coverage * 100.0,
                self.nominal_width * 1e3,
                1.0,
                "-",
                0.0,
            ]
        ]
        rows.extend(
            [
                r.scenario,
                r.severity,
                r.status,
                r.coverage * 100.0,
                r.mean_width * 1e3,
                r.inflation,
                "yes" if r.used_fallback else "no",
                r.unhealthy_fraction * 100.0,
            ]
            for r in self.results
        )
        return format_table(
            [
                "Scenario",
                "Severity",
                "Status",
                "Coverage (%)",
                "Len (mV)",
                "Inflation",
                "Fallback",
                "Unhealthy (%)",
            ],
            rows,
            title=title or "Fault-campaign stress report",
        )


def run_fault_campaign(flow, X: np.ndarray, y: np.ndarray, campaign) -> StressReport:
    """Serve a held-out lot through every scenario of a fault campaign.

    Parameters
    ----------
    flow:
        A *fitted* :class:`~repro.robust.flow.RobustVminFlow` (anything
        whose ``predict_interval`` returns a
        :class:`~repro.robust.fallback.DegradedPrediction` works).
    X, y:
        Clean held-out chips and their measured Vmin labels; every
        scenario corrupts a fresh copy of ``X``.
    campaign:
        An iterable of :class:`~repro.robust.faults.FaultScenario`
        (e.g. :meth:`~repro.robust.faults.FaultCampaign.standard`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y must be a matching 2-D/1-D pair, got {X.shape} and {y.shape}"
        )
    nominal = flow.predict_interval(X)
    results = []
    for scenario in campaign:
        prediction = flow.predict_interval(scenario.apply(X))
        results.append(
            StressResult(
                scenario=scenario.name,
                severity=float(scenario.severity),
                coverage=prediction.coverage(y),
                mean_width=prediction.mean_width,
                status=prediction.status.value,
                inflation=float(prediction.inflation),
                used_fallback=bool(prediction.used_fallback),
                unhealthy_fraction=prediction.health.unhealthy_fraction,
            )
        )
    return StressReport(
        nominal_coverage=nominal.coverage(y),
        nominal_width=nominal.mean_width,
        results=tuple(results),
    )
