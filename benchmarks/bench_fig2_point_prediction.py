"""Fig. 2 -- SCAN Vmin point prediction R² (and §IV-D RMSE ranges).

Regenerates the paper's Figure 2: for every ATE temperature and stress
read point in scope, the 4-fold-CV :math:`R^2` of the five point models
(LR, GP, XGBoost, CatBoost, NN).  RMSE is reported alongside because
Section IV-D quotes its range (2.5-7 mV for all non-GP models).

Expected shape (paper Section IV-D):

* no model dominates every (temperature, read point) cell,
* linear regression is competitive everywhere (within ~0.03-0.1 R² of
  the best),
* R² does not systematically degrade from 0 h to 1008 h -- the monitors
  track the aging state.
"""

from __future__ import annotations

from conftest import publish

from repro.eval.experiments import POINT_MODEL_NAMES, run_point_experiment
from repro.eval.reporting import format_series
from repro.eval.stats import paired_permutation_test, rank_models


def _render(dataset, profile, bench_scope) -> str:
    temperatures, read_points = bench_scope
    sections = []
    scenario_r2 = {name: [] for name in POINT_MODEL_NAMES}
    fold_r2 = {name: [] for name in POINT_MODEL_NAMES}
    for temperature in temperatures:
        r2_series = {name: [] for name in POINT_MODEL_NAMES}
        rmse_series = {name: [] for name in POINT_MODEL_NAMES}
        for hours in read_points:
            for name in POINT_MODEL_NAMES:
                result = run_point_experiment(
                    dataset, name, temperature, hours, profile=profile
                )
                r2_series[name].append(result.r2)
                rmse_series[name].append(result.rmse)
                scenario_r2[name].append(result.r2)
                fold_r2[name].extend(result.r2_per_fold)
        sections.append(
            format_series(
                "hours",
                list(read_points),
                r2_series,
                title=f"Fig.2 | SCAN Vmin point prediction R^2 @ {temperature:g}C",
            )
        )
        sections.append(
            format_series(
                "hours",
                list(read_points),
                rmse_series,
                title=f"Fig.2 | RMSE (mV) @ {temperature:g}C",
            )
        )

    # "No golden model" summary (Section IV-D): average R^2 rank across
    # scenarios, and whether LR is statistically distinguishable from the
    # best-ranked model on shared folds.
    ranks = rank_models(scenario_r2)
    best = min(ranks, key=ranks.get)
    rank_line = ", ".join(f"{name} {ranks[name]:.2f}" for name in POINT_MODEL_NAMES)
    lines = [f"Average R^2 rank across scenarios (1=best): {rank_line}"]
    if best != "LR":
        p = paired_permutation_test(fold_r2[best], fold_r2["LR"])
        lines.append(
            f"LR vs best-ranked ({best}): paired permutation p = {p:.3f} "
            "(Section IV-D: LR is competitive overall)"
        )
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def test_fig2_point_prediction(benchmark, dataset, profile, bench_scope):
    text = benchmark.pedantic(
        _render, args=(dataset, profile, bench_scope), rounds=1, iterations=1
    )
    publish("fig2_point_prediction", text)
