"""Benchmark recording with machine-readable JSON baselines.

The repo's perf trajectory lives in ``BENCH_training.json`` files: each
benchmark run times its stages with :func:`time_call`, records them in a
:class:`BenchRecorder`, and writes one JSON report.  CI uploads the
report as an artifact; future commits compare against a stored baseline
with :func:`regressions` instead of eyeballing wall-clock logs.

Report schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "benchmark": "training",
      "profile": "fast",            # REPRO_BENCH profile the run used
      "n_jobs": 4,                  # resolved REPRO_N_JOBS
      "git_sha": "abc123" | null,   # passed in by CI via REPRO_GIT_SHA
      "timings": {name: {"wall_s": float, "repeats": int, ...meta}},
      "speedups": {name: float},    # named baseline/candidate ratios
      "checks": {name: bool}        # e.g. serial-vs-parallel parity
    }

Wall times are measured with ``time.perf_counter``; everything else in
the report is deterministic, so two runs of the same commit differ only
in the ``wall_s`` values.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

from repro.runtime.artifacts import write_text_atomic

__all__ = [
    "BenchRecorder",
    "BenchTiming",
    "load_report",
    "peak_rss_mb",
    "regressions",
    "time_call",
]

R = TypeVar("R")

SCHEMA_VERSION = 1


def time_call(fn: Callable[[], R], repeats: int = 1) -> Tuple[R, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall time).

    Best-of-N is the standard defence against scheduler noise: the
    minimum is the least-contended observation of the same deterministic
    work.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    result: R
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return result, best


def _git_sha_fallback() -> Optional[str]:
    """Current commit from ``git rev-parse HEAD``; ``None`` off a checkout.

    The fallback behind ``REPRO_GIT_SHA``: a locally regenerated BENCH
    report should still say which commit produced it instead of
    committing ``"git_sha": null``.  Every failure mode (no git binary,
    not a repository, timeout) degrades to ``None``.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10.0,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def peak_rss_mb() -> Optional[float]:
    """Peak resident-set size of this process tree so far, in MiB.

    Reads ``getrusage`` high-water marks for the process itself and its
    waited-for children (the process-backend grid workers) and returns
    the larger -- the honest answer to "how much memory did this stage
    need".  ``None`` where the :mod:`resource` module is unavailable
    (non-POSIX platforms); benchmarks record it as metadata only.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    peak = max(own, children)
    # ru_maxrss is kilobytes on Linux but bytes on macOS.
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 2)


class BenchTiming:
    """One named timing entry plus free-form metadata."""

    def __init__(self, name: str, wall_s: float, repeats: int = 1, **meta: Any) -> None:
        if wall_s < 0:
            raise ValueError(f"wall_s must be >= 0, got {wall_s}")
        self.name = name
        self.wall_s = float(wall_s)
        self.repeats = int(repeats)
        self.meta = dict(meta)

    def as_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"wall_s": self.wall_s, "repeats": self.repeats}
        entry.update(self.meta)
        return entry


class BenchRecorder:
    """Accumulate timings/speedups/checks and serialise one JSON report.

    Parameters
    ----------
    benchmark:
        Report family name (``"training"`` for the training-engine
        suite); becomes part of the file schema, not the file name.
    profile:
        The ``REPRO_BENCH`` profile the run used (smoke/fast/full).
    n_jobs:
        The resolved worker count the parallel sections ran with.
    git_sha:
        Commit identifier; ``None`` reads the ``REPRO_GIT_SHA``
        environment variable (set by CI) and, when that is unset too,
        falls back to ``git rev-parse HEAD`` -- so locally regenerated
        reports are attributable to a commit.  Stays ``None`` only off
        a git checkout.
    """

    def __init__(
        self,
        benchmark: str,
        profile: str,
        n_jobs: int = 1,
        git_sha: Optional[str] = None,
    ) -> None:
        self.benchmark = benchmark
        self.profile = profile
        self.n_jobs = int(n_jobs)
        if git_sha is None:
            git_sha = os.environ.get("REPRO_GIT_SHA") or _git_sha_fallback()
        self.git_sha = git_sha
        self._timings: Dict[str, BenchTiming] = {}
        self._speedups: Dict[str, float] = {}
        self._checks: Dict[str, bool] = {}

    def record(self, name: str, wall_s: float, repeats: int = 1, **meta: Any) -> None:
        """Store one timing entry (overwrites an earlier same-name entry)."""
        self._timings[name] = BenchTiming(name, wall_s, repeats=repeats, **meta)

    def timed(self, name: str, fn: Callable[[], R], repeats: int = 1, **meta: Any) -> R:
        """Time ``fn`` with :func:`time_call` and record it under ``name``."""
        result, wall_s = time_call(fn, repeats=repeats)
        self.record(name, wall_s, repeats=repeats, **meta)
        return result

    def wall_s(self, name: str) -> float:
        """Recorded wall time for ``name`` (KeyError when missing)."""
        return self._timings[name].wall_s

    def speedup(self, name: str, baseline: str, candidate: str) -> float:
        """Record and return ``wall(baseline) / wall(candidate)``.

        A zero-duration candidate (clock resolution) reports ``inf`` --
        honest, and impossible for the real workloads this times.
        """
        base = self.wall_s(baseline)
        cand = self.wall_s(candidate)
        ratio = float("inf") if cand == 0 else base / cand
        self._speedups[name] = ratio
        return ratio

    def check(self, name: str, passed: bool) -> None:
        """Record a named boolean invariant (e.g. parallel == serial)."""
        self._checks[name] = bool(passed)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "profile": self.profile,
            "n_jobs": self.n_jobs,
            "git_sha": self.git_sha,
            "timings": {
                name: timing.as_dict() for name, timing in sorted(self._timings.items())
            },
            "speedups": dict(sorted(self._speedups.items())),
            "checks": dict(sorted(self._checks.items())),
        }

    def write(self, path: "str | Path") -> Path:
        """Serialise the report to ``path`` (parent dirs created).

        The write is atomic (temp file + rename via
        :mod:`repro.runtime.artifacts`): CI artifact uploads never race
        against a half-written report.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return write_text_atomic(
            path, json.dumps(self.as_dict(), indent=2, sort_keys=False) + "\n"
        )


def load_report(path: "str | Path") -> Dict[str, Any]:
    """Load and validate a benchmark JSON report.

    Corrupt or truncated files raise a ``ValueError`` naming the path
    -- the reader never surfaces a raw ``JSONDecodeError`` from a
    torn artifact.
    """
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(
            f"{path} is truncated or corrupt ({error}); benchmark reports "
            "are written atomically, so this file came from another writer"
        ) from error
    if not isinstance(data, dict) or "timings" not in data:
        raise ValueError(f"{path} is not a benchmark report (no 'timings' key)")
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has schema_version {version!r}; this reader supports "
            f"{SCHEMA_VERSION}"
        )
    return data


def regressions(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 1.5,
) -> Dict[str, Tuple[float, float]]:
    """Timings that got slower than ``threshold`` x the baseline.

    Returns ``{name: (baseline_wall_s, current_wall_s)}`` for every stage
    present in both reports whose current wall time exceeds
    ``threshold * baseline``.  Stages unique to either side are ignored
    -- adding a benchmark must not fail the comparison.
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    flagged: Dict[str, Tuple[float, float]] = {}
    base_timings = baseline.get("timings", {})
    for name, entry in current.get("timings", {}).items():
        if name not in base_timings:
            continue
        base_wall = float(base_timings[name]["wall_s"])
        cur_wall = float(entry["wall_s"])
        if cur_wall > threshold * base_wall:
            flagged[name] = (base_wall, cur_wall)
    return flagged
