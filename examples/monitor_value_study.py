"""How much are the on-chip monitors worth?  (Fig. 3 / Table IV in miniature.)

Compares calibrated CQR interval lengths under the paper's three feature
configurations -- parametric-only, on-chip-only, and combined -- at a
chosen corner and read point, and reports the "on-chip monitor gain"
(relative interval-shortening from adding monitor data to parametric
data; the paper measures ~21 %).  Also prints which channels CFS
actually selects under each configuration, making the information
argument concrete: a handful of ROD/CPD channels carry more Vmin
information than hundreds of parametric tests.

Run:
    python examples/monitor_value_study.py [--smoke]
"""

from __future__ import annotations

import argparse
import collections

import numpy as np

from repro import ConformalizedQuantileRegressor, FeatureSet, SiliconDataset
from repro.features.cfs import CFSSelector
from repro.features.selection import CFSSelectedRegressor
from repro.models import QuantileLinearRegression


def family(name: str) -> str:
    """Coarse channel family from a feature name."""
    if name.startswith("rod_"):
        return "ROD monitor"
    if name.startswith("cpd_"):
        return "CPD monitor"
    return "parametric " + name.split("_")[1]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--hours", type=int, default=504)
    parser.add_argument("--temperature", type=float, default=125.0)
    args = parser.parse_args()
    hours = 0 if args.smoke else args.hours

    dataset = SiliconDataset.generate(seed=args.seed)
    y = dataset.target(args.temperature, hours) * 1000.0  # mV
    n_train = 117

    widths = {}
    for feature_set in (FeatureSet.PARAMETRIC, FeatureSet.ONCHIP, FeatureSet.BOTH):
        X, names = dataset.features(
            hours,
            include_parametric=feature_set.include_parametric,
            include_onchip=feature_set.include_onchip,
        )
        template = CFSSelectedRegressor(
            QuantileLinearRegression(), k=8, quantile=0.5
        )
        cqr = ConformalizedQuantileRegressor(
            template, alpha=0.1, random_state=args.seed
        ).fit(X[:n_train], y[:n_train])
        intervals = cqr.predict_interval(X[n_train:])
        widths[feature_set] = intervals.mean_width

        selector = CFSSelector(k_max=8).fit(X[:n_train], y[:n_train])
        chosen = collections.Counter(
            family(names[i]) for i in selector.selected_
        )
        print(f"{feature_set.value:24s}: {X.shape[1]:5d} columns -> "
              f"len {intervals.mean_width:5.1f} mV, "
              f"coverage {intervals.coverage(y[n_train:]):.0%}")
        print(f"{'':24s}  CFS picks: {dict(chosen)}")

    gain = 1.0 - widths[FeatureSet.BOTH] / widths[FeatureSet.PARAMETRIC]
    onchip_vs_par = 1.0 - widths[FeatureSet.ONCHIP] / widths[FeatureSet.PARAMETRIC]
    print()
    print(f"on-chip monitor gain (combined vs parametric-only): {gain:+.1%}")
    print(f"on-chip-only vs parametric-only                  : {onchip_vs_par:+.1%}")
    print(
        f"\n{178} monitor channels vs 1800 parametric channels at "
        f"{args.temperature:g} degC, {hours} h (paper Table IV reports ~21 % gain)"
    )


if __name__ == "__main__":
    main()
