"""Whole-program static analysis (reprolint's deep pass).

Where :mod:`repro.devtools` lints one file at a time, this package
sees the project as a program: a module/function symbol table with
resolved imports (:mod:`.project`), per-function control-flow graphs
(:mod:`.cfg`), reaching-definitions and labelled taint over them
(:mod:`.dataflow`), a best-effort call graph (:mod:`.callgraph`), and
inter-procedural source-to-sink summaries (:mod:`.interproc`).  Two
rule packs run on top: REP2xx concurrency/determinism and REP3xx
conformal calibration hygiene (:mod:`.rules`).

Entry points: ``python -m repro analyze`` (:mod:`.cli`) or
:func:`analyze_paths` programmatically.
"""

from repro.devtools.analysis.engine import (
    AnalysisEngine,
    AnalysisResult,
    analyze_paths,
)
from repro.devtools.analysis.project import Project
from repro.devtools.analysis.rules import ALL_ANALYSIS_RULES, get_analysis_rule

__all__ = [
    "ALL_ANALYSIS_RULES",
    "AnalysisEngine",
    "AnalysisResult",
    "Project",
    "analyze_paths",
    "get_analysis_rule",
]
