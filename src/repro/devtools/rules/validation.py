"""REP107 -- validation parity for the coverage level ``alpha``.

``alpha`` is the miscoverage budget behind every guarantee this
library prints.  An ``alpha`` outside ``(0, 1)`` that is silently
accepted produces garbage quantile indices deep inside the conformal
machinery -- far from the call site, with no traceback pointing at
the real mistake.  The repository contract: every *public* function
or constructor that accepts a parameter literally named ``alpha``
must either

* validate it locally (an ``if`` mentioning ``alpha`` that raises), or
* visibly delegate it (pass ``alpha`` itself onward as a call
  argument, e.g. to a validating constructor or helper).

Purely-arithmetic uses (``1 - alpha/2`` and friends) with no guard and
no delegation are flagged: the function computes with an unchecked
level.  Private helpers (leading underscore) are exempt -- their
callers already validated.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule

__all__ = ["AlphaValidationRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _takes_alpha(function: _FunctionNode) -> bool:
    names = [
        arg.arg
        for arg in (
            *function.args.posonlyargs,
            *function.args.args,
            *function.args.kwonlyargs,
        )
    ]
    return "alpha" in names


def _body_nodes(function: _FunctionNode) -> List[ast.AST]:
    # Nested defs are included deliberately: a closure capturing `alpha`
    # and passing it on (the experiment-builder pattern) is delegation.
    collected: List[ast.AST] = []
    for statement in function.body:
        collected.extend(ast.walk(statement))
    return collected


def _mentions_alpha(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == "alpha"
        for child in ast.walk(node)
    )


def _validates_locally(nodes: List[ast.AST]) -> bool:
    for node in nodes:
        if isinstance(node, ast.If) and _mentions_alpha(node.test):
            if any(isinstance(inner, ast.Raise) for inner in ast.walk(node)):
                return True
    return False


def _delegates(nodes: List[ast.AST]) -> bool:
    for node in nodes:
        if not isinstance(node, ast.Call):
            continue
        arguments = [*node.args, *[kw.value for kw in node.keywords]]
        if any(
            isinstance(argument, ast.Name) and argument.id == "alpha"
            for argument in arguments
        ):
            return True
    return False


class AlphaValidationRule(Rule):
    """Require every public ``alpha`` entry point to validate or delegate."""

    rule_id = "REP107"
    name = "validation-parity"
    summary = "public functions taking alpha must validate or delegate it"
    rationale = (
        "an unchecked miscoverage level fails far from the call site "
        "inside quantile index arithmetic; the guarantee printed to the "
        "user is then silently wrong"
    )
    scopes = frozenset({"src"})

    def _is_public_entry(self, function: _FunctionNode) -> bool:
        name = function.name
        if name != "__init__" and name.startswith("_"):
            return False
        # Methods of private classes are internal plumbing: their callers
        # sit in the same module and have already validated.
        parent = getattr(function, "_reprolint_parent", None)
        while parent is not None:
            if isinstance(
                parent, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ) and parent.name.startswith("_"):
                return False
            parent = getattr(parent, "_reprolint_parent", None)
        return True

    def _check(
        self, node: _FunctionNode, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        if not self._is_public_entry(node) or not _takes_alpha(node):
            return
        nodes = _body_nodes(node)
        if _validates_locally(nodes) or _delegates(nodes):
            return
        yield self.diagnostic(
            node,
            context,
            f"'{node.name}' accepts alpha but neither validates it "
            "(raise on alpha outside (0, 1)) nor passes it to a "
            "validating callee; an out-of-range level would fail deep "
            "inside quantile arithmetic",
        )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Check one function or method."""
        return self._check(node, context)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Check one async function."""
        return self._check(node, context)
