"""Equivalence guarantees of the fast training engine.

Three contracts, each load-bearing for the perf work staying honest:

* the batched exact finder grows *identical* trees to the legacy
  per-feature reference scan,
* the histogram (binned) finder matches the exact finder's training
  predictions to 1e-12 on randomised fixtures and its full structure on
  shallow fixed-seed fixtures (thresholds agree up to bin edges, so test
  routing between bin edge and exact midpoint may differ -- training
  partitions cannot),
* cross-validation harnesses return bit-identical results for every
  ``n_jobs``.

Plus the hot-loop regression test: node data is sliced once per node
(through ``_node_view``), never once per candidate feature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.crossval import (
    KFold,
    cross_validate_intervals,
    cross_validate_point,
)
from repro.models import tree as tree_mod
from repro.models.binning import FeatureBinner
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.quantile import QuantileBandRegressor
from repro.models.tree import (
    DecisionTreeRegressor,
    GradientTree,
    TreeGrowthParams,
    _best_split_all_features,
    _best_split_for_feature,
)


def _random_problem(seed, n=80, n_features=6, duplicates=False):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    if duplicates:
        X = np.round(X, 1)  # heavy value ties exercise tie-breaking
    gradients = rng.normal(size=n)
    hessians = np.ones(n)
    return X, gradients, hessians


def _legacy_fit(X, gradients, hessians, params):
    """The seed's per-feature split loop, reimplemented as ground truth."""
    tree = GradientTree(params)

    def find_split(node_columns, node_grad, node_hess):
        best_gain, best_feature, best_threshold = -np.inf, -1, float("nan")
        for feature in range(node_columns.shape[1]):
            gain, threshold = _best_split_for_feature(
                node_columns[:, feature], node_grad, node_hess, params
            )
            if gain > best_gain:
                best_gain, best_feature, best_threshold = gain, feature, threshold
        if best_feature < 0:
            return best_gain, -1, best_threshold, np.empty(0, dtype=bool)
        goes_left = node_columns[:, best_feature] <= best_threshold
        return best_gain, best_feature, best_threshold, goes_left

    tree._columns = X.astype(np.float64)
    tree._grow(X.shape[0], gradients, hessians, find_split)
    del tree._columns
    return tree


# ---------------------------------------------------------------------------
# batched exact finder == legacy per-feature loop (bit-identical)
# ---------------------------------------------------------------------------

class TestBatchedExactEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("duplicates", [False, True])
    def test_identical_trees(self, seed, duplicates):
        X, gradients, hessians = _random_problem(seed, duplicates=duplicates)
        params = TreeGrowthParams(max_depth=5, min_samples_leaf=2)
        fast = GradientTree(params).fit_gradients(X, gradients, hessians)
        legacy = _legacy_fit(X, gradients, hessians, params)
        np.testing.assert_array_equal(fast.feature_, legacy.feature_)
        np.testing.assert_array_equal(fast.threshold_, legacy.threshold_)
        np.testing.assert_array_equal(fast.value_, legacy.value_)

    def test_single_column_matches_reference_finder(self):
        X, gradients, hessians = _random_problem(3, n_features=1)
        params = TreeGrowthParams()
        gain_ref, thr_ref = _best_split_for_feature(
            X[:, 0], gradients, hessians, params
        )
        gain, pos, thr = _best_split_all_features(X, gradients, hessians, params)
        assert pos == 0
        assert gain == gain_ref
        assert thr == thr_ref

    def test_no_admissible_split(self):
        X = np.full((8, 3), 2.5)  # constant features: nothing to split on
        gain, pos, thr = _best_split_all_features(
            X, np.ones(8), np.ones(8), TreeGrowthParams()
        )
        assert gain == -np.inf and pos == -1 and np.isnan(thr)


# ---------------------------------------------------------------------------
# histogram finder vs exact finder
# ---------------------------------------------------------------------------

class TestBinnedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_training_predictions_match(self, seed):
        X, gradients, hessians = _random_problem(seed, n=120)
        params = TreeGrowthParams(max_depth=5, min_samples_leaf=2)
        exact = GradientTree(params).fit_gradients(X, gradients, hessians)
        binner = FeatureBinner(max_bins=256)
        hist = GradientTree(params).fit_binned(
            binner.fit_transform(X), binner, gradients, hessians
        )
        # With >= one bin per distinct value the partitions are identical;
        # last-ulp gain ties may pick a different but equivalent split, so
        # the contract is on training predictions, not node layout.
        np.testing.assert_allclose(
            hist.predict(X), exact.predict(X), rtol=0.0, atol=1e-12
        )

    def test_shallow_structure_identical(self):
        # Shallow + well-separated data: structure matches exactly too
        # (the tests/test_histtree.py convention).
        X, gradients, hessians = _random_problem(2024, n=64, n_features=4)
        params = TreeGrowthParams(max_depth=3, min_samples_leaf=2)
        exact = GradientTree(params).fit_gradients(X, gradients, hessians)
        binner = FeatureBinner(max_bins=256)
        hist = GradientTree(params).fit_binned(
            binner.fit_transform(X), binner, gradients, hessians
        )
        np.testing.assert_array_equal(hist.feature_, exact.feature_)
        np.testing.assert_array_equal(hist.left_, exact.left_)
        np.testing.assert_array_equal(hist.right_, exact.right_)
        # Thresholds agree "up to bin edges": the stored cut points differ
        # (bin edge vs node-local midpoint) but every training row lands
        # in the same leaf, so leaf values -- and therefore training
        # predictions -- are bit-identical.
        np.testing.assert_array_equal(hist.predict(X), exact.predict(X))

    def test_decision_tree_splitter_equivalence(self, linear_data):
        X, y, _, _ = linear_data
        exact = DecisionTreeRegressor(max_depth=4, splitter="exact").fit(X, y)
        hist = DecisionTreeRegressor(
            max_depth=4, splitter="hist", max_bins=256
        ).fit(X, y)
        np.testing.assert_allclose(
            hist.predict(X), exact.predict(X), rtol=0.0, atol=1e-12
        )

    def test_invalid_splitter_rejected(self):
        with pytest.raises(ValueError, match="splitter"):
            DecisionTreeRegressor(splitter="sorted")


# ---------------------------------------------------------------------------
# hot-loop regression: slice once per node, not once per feature
# ---------------------------------------------------------------------------

class TestNodeSlicingRegression:
    def test_node_view_called_once_per_node(self, monkeypatch):
        X, gradients, hessians = _random_problem(0, n=60, n_features=5)
        calls = []
        real_view = tree_mod._node_view

        def counting_view(columns, grads, hess, rows):
            calls.append(rows.size)
            return real_view(columns, grads, hess, rows)

        monkeypatch.setattr(tree_mod, "_node_view", counting_view)
        tree = GradientTree(TreeGrowthParams(max_depth=4)).fit_gradients(
            X, gradients, hessians
        )
        # Exactly one slice per materialised node -- with 5 candidate
        # features, the historical per-feature slicing would have made
        # ~5x as many.
        assert len(calls) == tree.n_nodes

    def test_reference_finder_not_used_in_production_fit(self, monkeypatch):
        X, gradients, hessians = _random_problem(1)

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError(
                "_best_split_for_feature is the legacy reference; "
                "production fits must use the batched finders"
            )

        monkeypatch.setattr(tree_mod, "_best_split_for_feature", forbidden)
        GradientTree(TreeGrowthParams(max_depth=4)).fit_gradients(
            X, gradients, hessians
        )
        binner = FeatureBinner(max_bins=32)
        GradientTree(TreeGrowthParams(max_depth=4)).fit_binned(
            binner.fit_transform(X), binner, gradients, hessians
        )


# ---------------------------------------------------------------------------
# n_jobs never changes cross-validation results
# ---------------------------------------------------------------------------

class TestParallelCVEquivalence:
    def test_point_cv_identical(self, linear_data):
        X, y, _, _ = linear_data
        kfold = KFold(n_splits=4, shuffle=True, random_state=0)

        def builder(X_train, y_train):
            return LinearRegression().fit(X_train, y_train)

        serial = cross_validate_point(builder, X, y, kfold, n_jobs=1)
        threaded = cross_validate_point(builder, X, y, kfold, n_jobs=4)
        assert serial.r2_per_fold == threaded.r2_per_fold
        assert serial.rmse_per_fold == threaded.rmse_per_fold

    def test_interval_cv_identical(self, hetero_data):
        X, y = hetero_data
        kfold = KFold(n_splits=4, shuffle=True, random_state=0)

        def builder(X_train, y_train):
            band = QuantileBandRegressor(
                QuantileLinearRegression(), alpha=0.1
            )
            return band.fit(X_train, y_train)

        serial = cross_validate_intervals(builder, X, y, kfold, n_jobs=1)
        threaded = cross_validate_intervals(builder, X, y, kfold, n_jobs=4)
        assert serial.coverage_per_fold == threaded.coverage_per_fold
        assert serial.width_per_fold == threaded.width_per_fold

    def test_band_pair_fit_identical(self, hetero_data):
        X, y = hetero_data
        serial = QuantileBandRegressor(
            QuantileLinearRegression(), alpha=0.1, n_jobs=1
        ).fit(X, y)
        threaded = QuantileBandRegressor(
            QuantileLinearRegression(), alpha=0.1, n_jobs=2
        ).fit(X, y)
        for lo_s, lo_t in ((serial.lower_, threaded.lower_),
                           (serial.upper_, threaded.upper_)):
            np.testing.assert_array_equal(lo_s.coef_, lo_t.coef_)
