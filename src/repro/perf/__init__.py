"""Performance layer: deterministic parallel execution and benchmarking.

``repro.perf`` makes the training/evaluation hot path fast without
changing a single number:

* :mod:`repro.perf.parallel` -- a seeded, deterministic thread/process
  map with ordered result collection, a ``REPRO_N_JOBS`` environment
  override, and graceful serial fallback.  The CQR experiment grid is
  embarrassingly parallel (split-conformal calibration is independent
  per model and per fold), so cross-validation folds, experiment grid
  cells, and the lo/hi quantile pair of a band all fan out through it.
  :func:`parallel_map_outcomes` is the resilient variant: per-task
  :class:`TaskOutcome` capture, retry policies, and watchdog timeouts
  from :mod:`repro.runtime`.
* :mod:`repro.perf.bench` -- a benchmark recorder that times training
  stages and writes machine-readable JSON baselines
  (``BENCH_training.json``) so performance regressions are diffable
  across commits.
* :mod:`repro.perf.shm` -- parent-owned shared-memory transport for
  numpy arrays (the process-backend grid ships each pre-binned code
  matrix to the workers once, zero-copy, instead of pickling it per
  task).
* :mod:`repro.perf.gate` -- the CI regression gate:
  ``python -m repro.perf.gate BASELINE CURRENT`` fails when a stage's
  wall time regressed past the threshold.

See ``docs/PERFORMANCE.md`` for the environment knobs and the
determinism guarantees.
"""

from repro.perf.bench import (
    BenchRecorder,
    BenchTiming,
    load_report,
    peak_rss_mb,
    regressions,
    time_call,
)
# repro.perf.gate is deliberately NOT imported here: it is a ``-m``
# entry point, and importing it from the package would make
# ``python -m repro.perf.gate`` warn about the module already being in
# ``sys.modules``.  Import it as ``repro.perf.gate`` directly.
from repro.perf.parallel import (
    TaskOutcome,
    effective_n_jobs,
    parallel_map,
    parallel_map_outcomes,
    spawn_seeds,
)
from repro.perf.shm import ArraySpec, SharedArrayBundle, attach_array, detach_all

__all__ = [
    "ArraySpec",
    "BenchRecorder",
    "BenchTiming",
    "SharedArrayBundle",
    "TaskOutcome",
    "attach_array",
    "detach_all",
    "effective_n_jobs",
    "load_report",
    "parallel_map",
    "parallel_map_outcomes",
    "peak_rss_mb",
    "regressions",
    "spawn_seeds",
    "time_call",
]
