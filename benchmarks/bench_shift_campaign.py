"""Distribution-shift campaign benchmark with a machine-readable report.

Runs :func:`repro.eval.stress.run_shift_campaign` -- the guarded
serving stack driven through a multi-fab fleet's three injected
distribution shifts (new-fab process corner, in-field corner drift,
sensor recalibration) -- and writes
``benchmarks/results/BENCH_shift.json`` (see :mod:`repro.perf.bench`
for the schema) with:

* the campaign wall time plus per-phase coverage, alarms, detection
  latency, repair path, and effective sample size as timing metadata,
* the audited invariants as named checks: a quiet control phase at
  nominal coverage, both sentinels firing on the new fab within the
  latency budget, the weighted repair accepted with adequate ESS, the
  drift phase recovered by the adaptive recalibrator, the degenerate
  sensor-recal repair *refused* (and recovered by refit), and the
  service ending the campaign ``READY``.

The campaign protocol is fixed at its committed operating point for
every ``REPRO_BENCH`` profile -- the invariants are tuned detection /
repair thresholds, not throughput knobs, so scaling the models would
change what is being asserted.  Wall time varies run to run; the
checks are the contract and are asserted.
"""

from __future__ import annotations

from conftest import BENCH_SEED, RESULTS_DIR, bench_profile_name, publish

from repro.eval.stress import run_shift_campaign
from repro.perf.bench import BenchRecorder

REPORT_PATH = RESULTS_DIR / "BENCH_shift.json"


def test_shift_campaign(tmp_path):
    recorder = BenchRecorder(
        benchmark="shift", profile=bench_profile_name(), n_jobs=1
    )
    report = recorder.timed(
        "shift_campaign",
        lambda: run_shift_campaign(tmp_path / "registry", seed=BENCH_SEED),
    )
    for phase in report.phases:
        recorder.record(
            f"phase_{phase.phase}",
            recorder.wall_s("shift_campaign"),
            n_lots=phase.n_lots,
            coverage=phase.coverage,
            mean_width_v=phase.mean_width,
            exchangeability_alarm=phase.exchangeability_alarm,
            covariate_alarm=phase.covariate_alarm,
            detection_latency=phase.detection_latency,
            repair=phase.repair,
            ess=phase.ess,
            post_repair_coverage=phase.post_repair_coverage,
            state=phase.state,
        )
    recorder.record(
        "shift_metrics",
        recorder.wall_s("shift_campaign"),
        target_coverage=report.target_coverage,
        tolerance=report.tolerance,
        detection_budget=report.detection_budget,
        n_recalibrations=report.n_recalibrations,
        n_versions=report.n_versions,
        downgrade_reasons=[reason for reason, _ in report.downgrades],
        final_state=report.final_state,
    )

    floor = report.target_coverage - report.tolerance
    control = report.phase("control")
    new_fab = report.phase("new_fab")
    drift = report.phase("corner_drift")
    recal = report.phase("sensor_recal")
    recorder.check(
        "control_quiet",
        not control.exchangeability_alarm and not control.covariate_alarm,
    )
    recorder.check("control_coverage_nominal", control.coverage >= floor)
    recorder.check(
        "new_fab_detected_in_budget",
        new_fab.exchangeability_alarm
        and new_fab.covariate_alarm
        and new_fab.detection_latency is not None
        and new_fab.detection_latency <= report.detection_budget,
    )
    recorder.check(
        "new_fab_weighted_repair",
        new_fab.repair == "weighted"
        and new_fab.ess is not None
        and new_fab.post_repair_coverage is not None
        and new_fab.post_repair_coverage >= floor,
    )
    recorder.check(
        "drift_adaptive_repair",
        drift.repair == "adaptive"
        and drift.post_repair_coverage is not None
        and drift.post_repair_coverage >= floor,
    )
    recorder.check(
        "recal_refused_then_refit",
        recal.repair == "refused+refit"
        and recal.post_repair_coverage is not None
        and recal.post_repair_coverage >= floor,
    )
    recorder.check(
        "all_downgrades_audited",
        all(reason for reason, _ in report.downgrades),
    )
    recorder.check("ends_ready", report.final_state == "ready")
    recorder.check("campaign_ok", report.ok())

    path = recorder.write(REPORT_PATH)
    publish("shift_campaign", report.to_table())
    print(f"wrote {path}")

    assert report.ok(), report.to_table()
