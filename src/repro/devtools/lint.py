"""``python -m repro.devtools.lint`` -- the reprolint command line.

Usage::

    python -m repro.devtools.lint src tests            # lint, text report
    python -m repro.devtools.lint --format json src    # machine-readable
    python -m repro.devtools.lint --list-rules         # what runs and why
    python -m repro.devtools.lint --disable REP108 src # ad-hoc rule filter

Exit codes are stable for CI wiring:

* ``0`` -- no findings,
* ``1`` -- at least one finding,
* ``2`` -- engine error: usage or I/O error (unknown rule, missing
  path), malformed config, or a file the engine could not parse
  (``REP000``) -- a linter that could not read the code must not
  report it merely "dirty", let alone clean.

Configuration is read from the nearest ``pyproject.toml``'s
``[tool.reprolint]`` table unless ``--no-config`` is given; command
line ``--enable``/``--disable`` are applied on top of it.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import List, Optional

from pathlib import Path

from repro.devtools.config import LintConfig, load_config
from repro.devtools.diagnostics import PARSE_ERROR_ID
from repro.devtools.engine import LintEngine, collect_files
from repro.devtools.reporters import render_json, render_sarif, render_text
from repro.devtools.rules import ALL_RULES, get_rule

__all__ = ["build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=(
            "reprolint: AST-based reproducibility lint for scientific / "
            "conformal-prediction code"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. 'src tests')",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-output",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--enable",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="switch these rules off (id or name; repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.reprolint] in pyproject.toml",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        scopes = "+".join(sorted(rule.scopes))
        lines.append(f"{rule.rule_id}  {rule.name}  ({scopes})")
        lines.append(f"    {rule.summary}")
        lines.append(f"    why: {rule.rationale}")
    return "\n".join(lines)


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        anchor = args.paths[0] if args.paths else None
        config = load_config(anchor)
    # CLI filters compose with (and, for --enable, override) file config.
    for identifier in (*args.enable, *args.disable):
        get_rule(identifier)  # raises KeyError for unknown rules
    if args.enable:
        config = replace(config, enable=frozenset(args.enable), disable=frozenset())
    if args.disable:
        config = replace(config, disable=config.disable | frozenset(args.disable))
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # The consumer closed stdout early (``... | head``); that is not
        # an engine failure and must not traceback.  Point stdout at
        # /dev/null so the interpreter's exit-time flush stays quiet,
        # and exit with the conventional 128 + SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src tests')", file=sys.stderr)
        return EXIT_ERROR

    try:
        config = _resolve_config(args)
        files = collect_files(args.paths, config)
        engine = LintEngine(config=config)
        diagnostics = engine.lint_files(files)
    except (KeyError, ValueError, OSError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return EXIT_ERROR

    for note in config.notes:
        print(f"note: {note}", file=sys.stderr)
    if args.sarif_output:
        Path(args.sarif_output).write_text(
            render_sarif(diagnostics, tool_name="reprolint", rules=ALL_RULES)
            + "\n",
            encoding="utf-8",
        )
    if args.format == "sarif":
        print(render_sarif(diagnostics, tool_name="reprolint", rules=ALL_RULES))
    elif args.format == "json":
        print(render_json(diagnostics, checked_files=len(files)))
    else:
        print(render_text(diagnostics, checked_files=len(files)))
    # A file the engine could not parse is an engine failure, not a
    # finding: the rest of that file went unchecked.
    if any(d.rule_id == PARSE_ERROR_ID for d in diagnostics):
        return EXIT_ERROR
    return EXIT_FINDINGS if diagnostics else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
