"""Ablation -- target miscoverage alpha (paper fixes alpha = 0.1).

Sweeps alpha over {0.05, 0.1, 0.2} for CQR-LR and CQR-CatBoost at
25 degC / 0 h.  Expected shape: empirical coverage tracks ``1 − alpha``
at every level (the conformal guarantee is level-uniform) while the
interval length grows as alpha shrinks -- quantifying the price of the
paper's 90 % choice versus a stricter 95 %.
"""

from __future__ import annotations

from conftest import publish

from repro.eval.experiments import run_region_experiment
from repro.eval.reporting import format_table

ALPHAS = (0.05, 0.1, 0.2)
METHODS = ("CQR LR", "CQR CatBoost")


def _render(dataset, profile) -> str:
    rows = []
    for method in METHODS:
        for alpha in ALPHAS:
            result = run_region_experiment(
                dataset, method, 25.0, 0, alpha=alpha, profile=profile
            )
            rows.append(
                [method, alpha, (1 - alpha) * 100.0, result.coverage * 100.0, result.width]
            )
    return format_table(
        ["Method", "alpha", "Target (%)", "Coverage (%)", "Len (mV)"],
        rows,
        title="Ablation | coverage level alpha (25C, 0h)",
        float_format="{:.2f}",
    )


def test_ablation_alpha(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("ablation_alpha", text)
