"""Production-test screening: skip the slow Vmin search using intervals.

This is the paper's first motivating use case (Sections I and V): on the
production floor, a binary-search SCAN Vmin test is one of the most
expensive insertions.  With a calibrated interval predicted from cheap
parametric + monitor data, a chip whose whole interval clears the spec
ships without the search; one whose whole interval violates it is binned
immediately; only chips whose interval straddles the spec are retested.

The demo screens the *post-burn-in* population (1008 h, cold corner --
where grown latent defects actually violate the spec): it trains on the
first 100 chips and audits the screening of the remaining 56 against
their measured Vmin: test-time saved, underkill (escapes) and overkill
(good chips scrapped), with and without a guard band.

Run:
    python examples/production_screening.py [--smoke]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SiliconDataset, VminPredictionFlow
from repro.flow import ScreeningDecision, SpecScreeningPolicy
from repro.models import ObliviousBoostingRegressor
from repro.silicon.constants import MIN_SPEC_V


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = SiliconDataset.generate(seed=args.seed)
    temperature = -45.0
    hours = 1008
    X, names = dataset.features(hours)
    y = dataset.target(temperature, hours)
    n_train = 100

    base = ObliviousBoostingRegressor(
        n_estimators=20 if args.smoke else 100, quantile=0.5, random_state=args.seed
    )
    flow = VminPredictionFlow(base_model=base, alpha=0.1, random_state=args.seed)
    flow.fit(X[:n_train], y[:n_train], feature_names=names)
    intervals = flow.predict_interval(X[n_train:])
    y_test = y[n_train:]

    print(f"screening {len(y_test)} chips at {temperature:g} degC "
          f"against min_spec = {MIN_SPEC_V*1e3:.0f} mV")
    print(f"true failures in this sample: {int(np.sum(y_test > MIN_SPEC_V))}")
    print()

    for guard_band in (0.0, 0.010):
        policy = SpecScreeningPolicy(min_spec_v=MIN_SPEC_V, guard_band_v=guard_band)
        outcome = policy.screen(intervals, y_test)
        print(f"guard band {guard_band*1e3:.0f} mV:")
        print(f"  pass without test : {outcome.count(ScreeningDecision.PASS)}")
        print(f"  fail without test : {outcome.count(ScreeningDecision.FAIL)}")
        print(f"  routed to retest  : {outcome.count(ScreeningDecision.RETEST)}")
        print(f"  Vmin test time saved : {outcome.test_time_saved:.1%}")
        print(f"  underkill (escapes)  : {outcome.underkill:.1%}")
        print(f"  overkill (waste)     : {outcome.overkill:.1%}")
        print()

    defect_mask = dataset.defect_mask()[n_train:]
    widths = intervals.width
    if defect_mask.any():
        print(
            "interval width, defective vs healthy chips: "
            f"{widths[defect_mask].mean()*1e3:.1f} mV vs "
            f"{widths[~defect_mask].mean()*1e3:.1f} mV"
        )
        print("(adaptive CQR intervals flag marginal parts with wider bands)")


if __name__ == "__main__":
    main()
