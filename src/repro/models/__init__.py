"""Regression models used as :math:`V_{min}` point and quantile predictors.

This subpackage is a from-scratch substrate replacing the third-party
packages used in the paper (scikit-learn, XGBoost, CatBoost, PyTorch):

* :mod:`repro.models.linear` -- ordinary least squares / ridge regression and
  exact linear quantile regression,
* :mod:`repro.models.gp` -- exact Gaussian process regression with marginal
  likelihood hyper-parameter fitting (paper Section II-B.1),
* :mod:`repro.models.gbm` -- XGBoost-style second-order gradient boosting,
* :mod:`repro.models.oblivious` -- CatBoost-style oblivious-tree boosting,
* :mod:`repro.models.nn` -- the 2-layer MLP of paper Section IV-C.4,
* :mod:`repro.models.quantile` -- the (lower, upper) quantile band regressor
  of paper Eq. (2),
* :mod:`repro.models.ensemble` -- deep-ensemble uncertainty baseline
  (Table I comparison row),
* :mod:`repro.models.tables` -- compiled decision-table inference kernels:
  fitted tree ensembles flattened into numpy tensors scored batch-at-once,
  bit-identical to the per-tree reference loop.

All estimators follow a small scikit-learn-like protocol defined in
:mod:`repro.models.base`: ``fit(X, y) -> self``, ``predict(X) -> ndarray``,
plus ``get_params``/``set_params``/``clone`` support so they can be used
interchangeably inside the conformal wrappers of :mod:`repro.core`.
"""

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_X,
    check_X_y,
    clone,
)
from repro.models.ensemble import DeepEnsembleRegressor
from repro.models.gbm import GradientBoostingRegressor
from repro.models.gp import GaussianProcessRegressor
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.losses import (
    huber_loss,
    mse_loss,
    pinball_loss,
    smooth_pinball_loss,
)
from repro.models.nn import MLPRegressor
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.optim import SGD, Adam
from repro.models.quantile import PackageDefaultQuantileBand, QuantileBandRegressor
from repro.models.tables import (
    CompiledDepthwiseTables,
    CompiledObliviousTables,
    compile_depthwise,
    compile_oblivious,
)
from repro.models.tree import DecisionTreeRegressor

__all__ = [
    "Adam",
    "BaseRegressor",
    "CompiledDepthwiseTables",
    "CompiledObliviousTables",
    "DecisionTreeRegressor",
    "DeepEnsembleRegressor",
    "GaussianProcessRegressor",
    "GradientBoostingRegressor",
    "LinearRegression",
    "MLPRegressor",
    "ObliviousBoostingRegressor",
    "PackageDefaultQuantileBand",
    "QuantileBandRegressor",
    "QuantileLinearRegression",
    "SGD",
    "check_X",
    "check_X_y",
    "check_fitted",
    "clone",
    "compile_depthwise",
    "compile_oblivious",
    "huber_loss",
    "mse_loss",
    "pinball_loss",
    "smooth_pinball_loss",
]
