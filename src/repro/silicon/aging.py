"""BTI/HCI aging model for the accelerated burn-in stress.

The dominant wear-out in thin-oxide 5 nm logic under elevated-voltage
dynamic stress is Bias Temperature Instability, classically modelled as
a power law in stress time

.. math::

    \\Delta V_{th}(t) = A \\cdot (t / t_{ref})^{n},\\qquad n \\approx 0.2,

plus a smaller Hot-Carrier-Injection component that is closer to linear
in time.  ``A`` varies chip to chip (activity patterns, local workload
heating, process) as a log-normal -- that chip-to-chip spread is exactly
what the on-chip monitors observe and what makes them predictive of
future Vmin degradation in the paper's Section IV-D.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import check_random_state

__all__ = ["AgedPopulation", "AgingModel"]


class AgingModel:
    """Per-chip threshold-voltage shift as a function of stress hours.

    Parameters
    ----------
    bti_median_v:
        Median BTI ΔVth at ``t_ref_hours`` of stress (V).
    bti_log_sigma:
        Chip-to-chip log-normal sigma of the BTI amplitude.
    bti_exponent:
        Power-law time exponent ``n``.
    hci_median_v:
        Median HCI ΔVth at ``t_ref_hours`` (V), accumulated linearly.
    hci_log_sigma:
        Chip-to-chip log-normal sigma of the HCI amplitude.
    t_ref_hours:
        Reference stress duration (the full 1008 h burn-in by default).
    vth_coupling:
        Fast silicon (negative Vth shift) stresses harder under fixed
        elevated voltage; the amplitude log-mean shifts by
        ``-coupling * vth_shift / vth_sigma_ref``.
    """

    def __init__(
        self,
        bti_median_v: float = 0.018,
        bti_log_sigma: float = 0.35,
        bti_exponent: float = 0.21,
        hci_median_v: float = 0.004,
        hci_log_sigma: float = 0.4,
        t_ref_hours: float = 1008.0,
        vth_coupling: float = 0.3,
        vth_sigma_ref: float = 0.010,
    ) -> None:
        for name, value in (
            ("bti_median_v", bti_median_v),
            ("bti_log_sigma", bti_log_sigma),
            ("bti_exponent", bti_exponent),
            ("hci_median_v", hci_median_v),
            ("hci_log_sigma", hci_log_sigma),
            ("t_ref_hours", t_ref_hours),
            ("vth_sigma_ref", vth_sigma_ref),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if not 0.0 < bti_exponent < 1.0:
            raise ValueError(
                f"bti_exponent must be in (0, 1), got {bti_exponent}"
            )
        self.bti_median_v = bti_median_v
        self.bti_log_sigma = bti_log_sigma
        self.bti_exponent = bti_exponent
        self.hci_median_v = hci_median_v
        self.hci_log_sigma = hci_log_sigma
        self.t_ref_hours = t_ref_hours
        self.vth_coupling = vth_coupling
        self.vth_sigma_ref = vth_sigma_ref

    def sample_amplitudes(
        self, vth_shift: np.ndarray, rng
    ) -> "AgedPopulation":
        """Draw per-chip BTI/HCI amplitudes for a population.

        ``vth_shift`` is the global process shift from
        :class:`~repro.silicon.process.ProcessSample`; it tilts the stress
        severity of fast silicon.
        """
        vth_shift = np.asarray(vth_shift, dtype=np.float64)
        if vth_shift.ndim != 1:
            raise ValueError(f"vth_shift must be 1-D, got shape {vth_shift.shape}")
        rng = check_random_state(rng)
        n = vth_shift.shape[0]
        tilt = -self.vth_coupling * vth_shift / self.vth_sigma_ref * (
            self.bti_log_sigma / 2.0
        )
        bti = self.bti_median_v * np.exp(
            rng.normal(0.0, self.bti_log_sigma, size=n) + tilt
        )
        hci = self.hci_median_v * np.exp(
            rng.normal(0.0, self.hci_log_sigma, size=n) + tilt
        )
        return AgedPopulation(model=self, bti_amplitude=bti, hci_amplitude=hci)


class AgedPopulation:
    """Frozen per-chip aging amplitudes with time evaluation."""

    def __init__(
        self, model: AgingModel, bti_amplitude: np.ndarray, hci_amplitude: np.ndarray
    ) -> None:
        if bti_amplitude.shape != hci_amplitude.shape or bti_amplitude.ndim != 1:
            raise ValueError("amplitude arrays must be 1-D with equal shape")
        self.model = model
        self.bti_amplitude = bti_amplitude
        self.hci_amplitude = hci_amplitude

    @property
    def n_chips(self) -> int:
        return int(self.bti_amplitude.shape[0])

    def vth_shift_at(self, hours: float) -> np.ndarray:
        """ΔVth per chip after ``hours`` of accelerated stress (V).

        Zero at ``hours = 0`` exactly; monotone nondecreasing in time.
        """
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")
        if hours == 0:
            return np.zeros(self.n_chips)
        normalized = hours / self.model.t_ref_hours
        bti = self.bti_amplitude * normalized**self.model.bti_exponent
        hci = self.hci_amplitude * normalized
        return bti + hci
