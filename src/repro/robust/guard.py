"""Input-sanitization front-end: per-feature health assessment.

The strict ``check_X`` contract of :mod:`repro.models.base` is right for
*training* -- garbage labels silently poison a fit -- but wrong for
*serving*: one dead ROD sensor must not crash the interval prediction
for a whole lot.  :class:`FeatureHealthGuard` is the serving-side
replacement.  It captures robust per-feature statistics (median,
quantile range, spread) from the clean training matrix, then classifies
every entry of an incoming batch instead of raising:

* **missing** -- NaN/Inf entries (dead sensors, dropped telemetry),
* **stuck**   -- a column frozen at one value across the batch although
  it varied at train time (stuck-at ADC codes),
* **out of range** -- finite values outside the inflated training
  quantile range (drifted or mis-measured sensors).

The resulting :class:`HealthReport` drives bounded imputation
(:mod:`repro.robust.imputation`) and the degradation policy
(:mod:`repro.robust.fallback`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.models.base import check_fitted, check_X

__all__ = ["FeatureHealthGuard", "HealthReport"]


@dataclass(frozen=True)
class HealthReport:
    """Entry- and feature-level health classification of one batch.

    Attributes
    ----------
    missing:
        (n_samples, n_features) bool -- non-finite entries.
    out_of_range:
        (n_samples, n_features) bool -- finite entries outside the
        inflated training range.
    stuck:
        (n_features,) bool -- columns frozen across the batch that were
        not constant at train time (only detectable with >= 2 samples).
    unhealthy:
        (n_features,) bool -- columns failing any check badly enough to
        be considered unusable for this batch (see
        :class:`FeatureHealthGuard.unhealthy_fraction`).
    """

    missing: np.ndarray
    out_of_range: np.ndarray
    stuck: np.ndarray
    unhealthy: np.ndarray

    @property
    def n_samples(self) -> int:
        """Batch size assessed."""
        return int(self.missing.shape[0])

    @property
    def n_features(self) -> int:
        """Number of feature columns assessed."""
        return int(self.missing.shape[1])

    @property
    def healthy(self) -> bool:
        """True iff no entry raised any flag at all."""
        return not (
            bool(self.missing.any())
            or bool(self.out_of_range.any())
            or bool(self.stuck.any())
        )

    @property
    def unhealthy_fraction(self) -> float:
        """Fraction of feature columns classified unhealthy."""
        return float(np.mean(self.unhealthy))

    @property
    def damaged_entry_fraction(self) -> float:
        """Fraction of individual entries that were missing or out of
        range -- catches row-level damage (dropped telemetry records)
        that no column-level statistic would flag."""
        return float(np.mean(self.missing | self.out_of_range))

    def unhealthy_fraction_of(self, columns: Sequence[int]) -> float:
        """Unhealthy fraction restricted to a column subset (e.g. the
        on-chip monitor block); 0.0 for an empty subset."""
        cols = np.asarray(list(columns), dtype=np.int64)
        if cols.size == 0:
            return 0.0
        if cols.min() < 0 or cols.max() >= self.n_features:
            raise ValueError(
                f"column indices must be in [0, {self.n_features}), got {cols}"
            )
        return float(np.mean(self.unhealthy[cols]))

    def describe(self) -> str:
        """One-line summary for logs and degradation notes."""
        return (
            f"{self.n_samples} samples x {self.n_features} features: "
            f"{int(self.unhealthy.sum())} unhealthy columns "
            f"({self.unhealthy_fraction:.1%}), "
            f"{int(self.stuck.sum())} stuck, "
            f"{int(self.missing.sum())} missing entries, "
            f"{int(self.out_of_range.sum())} out-of-range entries"
        )


class FeatureHealthGuard:
    """Train-time statistic capture + batch-time health masks.

    Parameters
    ----------
    range_quantiles:
        (low, high) training quantiles anchoring the plausible range.
    range_inflation:
        The plausible range is the quantile span inflated by this factor
        on each side; values outside are flagged out-of-range.  Larger
        values tolerate more drift before flagging.
    unhealthy_fraction:
        A column is *unhealthy* for a batch when it is stuck, or when
        more than this fraction of its entries are missing or
        out-of-range.
    """

    def __init__(
        self,
        range_quantiles: Tuple[float, float] = (0.01, 0.99),
        range_inflation: float = 1.0,
        unhealthy_fraction: float = 0.5,
    ) -> None:
        lo, hi = float(range_quantiles[0]), float(range_quantiles[1])
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(
                f"range_quantiles must satisfy 0 <= lo < hi <= 1, got {range_quantiles}"
            )
        if range_inflation < 0:
            raise ValueError(f"range_inflation must be >= 0, got {range_inflation}")
        if not 0.0 <= unhealthy_fraction <= 1.0:
            raise ValueError(
                f"unhealthy_fraction must be in [0, 1], got {unhealthy_fraction}"
            )
        self.range_quantiles = (lo, hi)
        self.range_inflation = float(range_inflation)
        self.unhealthy_fraction = float(unhealthy_fraction)
        self.median_ = None

    def fit(self, X: np.ndarray) -> "FeatureHealthGuard":
        """Capture per-feature statistics from a clean training matrix."""
        X = check_X(X)
        lo_q, hi_q = self.range_quantiles
        q_lo = np.quantile(X, lo_q, axis=0)
        q_hi = np.quantile(X, hi_q, axis=0)
        span = q_hi - q_lo
        # Degenerate (constant) columns get a tiny absolute tolerance so
        # bit-identical values stay in range but real deviations flag.
        floor = 1e-9 * np.maximum(1.0, np.abs(q_hi))
        span = np.maximum(span, floor)
        self.median_ = np.median(X, axis=0)
        self.lower_bound_ = q_lo - self.range_inflation * span
        self.upper_bound_ = q_hi + self.range_inflation * span
        # max == min is exact for truly constant columns, unlike std(),
        # whose accumulated rounding can leave a nonzero residual.
        self.train_constant_ = X.max(axis=0) == X.min(axis=0)  # reprolint: disable=REP102
        self.n_features_in_ = int(X.shape[1])
        return self

    def assess(self, X: np.ndarray) -> HealthReport:
        """Classify every entry of a (possibly corrupted) batch.

        Never raises on NaN/Inf/stuck/drifted *values*; only structural
        errors (wrong dimensionality or column count) raise, because
        those are caller bugs no imputation can paper over.
        """
        check_fitted(self, "median_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (n_samples, n_features), got shape {X.shape}")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, guard was fitted on "
                f"{self.n_features_in_}"
            )
        missing = ~np.isfinite(X)
        filled = np.where(missing, self.median_, X)
        out_of_range = ~missing & (
            (filled < self.lower_bound_) | (filled > self.upper_bound_)
        )
        if X.shape[0] >= 2:
            # Frozen iff every *finite* entry of the column is identical
            # (masking non-finite entries with +/-inf keeps this pure
            # numpy, no all-NaN-slice warnings).
            finite_max = np.where(missing, -np.inf, X).max(axis=0)
            finite_min = np.where(missing, np.inf, X).min(axis=0)
            all_missing = missing.all(axis=0)
            batch_frozen = ~all_missing & (finite_max == finite_min)  # reprolint: disable=REP102
            stuck = batch_frozen & ~self.train_constant_
        else:
            stuck = np.zeros(X.shape[1], dtype=bool)
        broken_fraction = (missing | out_of_range).mean(axis=0)
        unhealthy = stuck | (broken_fraction > self.unhealthy_fraction)
        return HealthReport(
            missing=missing,
            out_of_range=out_of_range,
            stuck=stuck,
            unhealthy=unhealthy,
        )
