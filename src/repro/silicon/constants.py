"""Shared physical constants and Table-II geometry of the dataset.

Values follow the paper's Table II where stated; everything else is a
plausible 5 nm automotive operating point, chosen so that population
statistics (Vmin spread of tens of mV, interval lengths of 15-60 mV)
land in the same regime as the paper's Table III.
"""

from __future__ import annotations

__all__ = [
    "CPD_TEMPERATURE_C",
    "MILLIVOLT",
    "MIN_SPEC_V",
    "N_CHIPS_DEFAULT",
    "N_CPD_SENSORS",
    "N_PARAMETRIC_TESTS",
    "N_ROD_SENSORS",
    "PICOSECOND",
    "READ_POINTS_HOURS",
    "ROD_TEMPERATURE_C",
    "STRESS_TEMPERATURE_C",
    "STRESS_VOLTAGE_V",
    "TEMPERATURES_C",
    "THERMAL_VOLTAGE_V",
    "VMIN_BASE_V",
    "V_NOMINAL_V",
    "validate_read_point",
    "validate_temperature",
]

# -- Table II geometry -------------------------------------------------------
N_CHIPS_DEFAULT = 156
"""Number of chips in the paper's population."""

N_PARAMETRIC_TESTS = 1800
"""Parametric ATE test channels (measured at time 0, all temperatures)."""

N_ROD_SENSORS = 168
"""Ring-oscillator-delay sensors per chip."""

N_CPD_SENSORS = 10
"""In-situ critical-path-delay sensors per chip."""

READ_POINTS_HOURS = (0, 24, 48, 168, 504, 1008)
"""Burn-in stress read points (hours) at which stress pauses for tests."""

TEMPERATURES_C = (-45.0, 25.0, 125.0)
"""ATE test temperatures for SCAN Vmin and parametric tests."""

ROD_TEMPERATURE_C = 25.0
"""ROD sensors are read on ATE at room temperature only (Table II)."""

CPD_TEMPERATURE_C = 80.0
"""CPD sensors are read in-situ inside the burn-in oven at 80 degC."""

# -- electrical operating point ----------------------------------------------
V_NOMINAL_V = 0.80
"""Nominal supply voltage of the simulated product (V)."""

MIN_SPEC_V = 0.72
"""Product Vmin specification (the min_spec dashed line of Fig. 1); chips
whose true Vmin exceeds this are spec violations."""

VMIN_BASE_V = {
    -45.0: 0.630,
    25.0: 0.560,
    125.0: 0.585,
}
"""Population-median SCAN Vmin per ATE temperature at time 0 (V).  Cold is
worst (Vth rises, gate overdrive shrinks at low voltage), hot is second
worst (leakage-driven IR drop), room is best -- the ordering implied by
the per-temperature spreads of the paper's Table III."""

THERMAL_VOLTAGE_V = {
    -45.0: 0.0197,
    25.0: 0.0257,
    125.0: 0.0343,
}
"""kT/q at each ATE temperature (V), used by the subthreshold-leakage
parametric test families."""

# -- stress conditions ---------------------------------------------------------
STRESS_VOLTAGE_V = 0.92
"""Elevated burn-in supply: accelerates BTI so 1008 oven hours emulate
years of field life."""

STRESS_TEMPERATURE_C = 80.0
"""Burn-in oven ambient during dynamic Dhrystone stress."""

PICOSECOND = 1e-12
MILLIVOLT = 1e-3


def validate_temperature(temperature_c: float) -> float:
    """Return ``temperature_c`` if it is one of the ATE test temperatures."""
    temperature_c = float(temperature_c)
    if temperature_c not in VMIN_BASE_V:
        raise ValueError(
            f"temperature {temperature_c} degC is not an ATE test corner; "
            f"expected one of {sorted(VMIN_BASE_V)}"
        )
    return temperature_c


def validate_read_point(hours: float) -> int:
    """Return ``hours`` as int if it is one of the stress read points."""
    if hours not in READ_POINTS_HOURS:
        raise ValueError(
            f"read point {hours} h is not in the stress schedule "
            f"{READ_POINTS_HOURS}"
        )
    return int(hours)
