"""Tests for the serving-side shift guard and its service integration."""

import numpy as np
import pytest

from repro.models import QuantileLinearRegression
from repro.robust import RobustVminFlow
from repro.serve import (
    ModelRegistry,
    ReasonCode,
    RejectedRequest,
    ServiceState,
    ShiftGuard,
    VminServingService,
)
from repro.shift import DegenerateWeightsError, LogisticDensityRatio

N_PARAMETRIC = 4
N_MONITORS = 8
D = N_PARAMETRIC + N_MONITORS
PARAMETRIC = list(range(N_PARAMETRIC))
MONITORS = list(range(N_PARAMETRIC, D))
N_TRAIN = 400


def _make_data(n=700, seed=42):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    w = np.concatenate(
        [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
    )
    y = X @ w + rng.normal(scale=0.5, size=n)
    return X, y


@pytest.fixture(scope="module")
def lot():
    """A fitted flow plus held-out exchangeable traffic, shared read-only."""
    X, y = _make_data()
    flow = RobustVminFlow(
        base_model=QuantileLinearRegression(), alpha=0.1, random_state=0
    ).fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        fallback_columns=PARAMETRIC,
        monitor_columns=MONITORS,
    )
    return flow, X[N_TRAIN:], y[N_TRAIN:]


def _service(tmp_path, flow, guard):
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(flow)
    service = VminServingService(registry, shift_guard=guard)
    service.start()
    return registry, service


class TestShiftGuardUnit:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"zone_window": 0},
            {"zone_tolerance": 1.0},
            {"zone_tolerance": -0.1},
            {"zone_min_observations": 0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            ShiftGuard(**kwargs)

    def test_arm_requires_fitted_flow(self):
        flow = RobustVminFlow(base_model=QuantileLinearRegression())
        with pytest.raises(RuntimeError, match="unfitted"):
            ShiftGuard().arm(flow)

    def test_observe_and_verdict_require_arm(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        with pytest.raises(RuntimeError, match="not armed"):
            guard.observe(flow, Xh[:10], yh[:10])
        with pytest.raises(RuntimeError, match="not armed"):
            guard.verdict()

    def test_feature_columns_bounds_checked(self, lot):
        flow, _, _ = lot
        with pytest.raises(ValueError, match="feature_columns"):
            ShiftGuard(feature_columns=[0, D]).arm(flow)
        with pytest.raises(ValueError, match="feature_columns"):
            ShiftGuard(feature_columns=[]).arm(flow)

    def test_quiet_on_exchangeable_traffic(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard().arm(flow)
        verdict = guard.observe(flow, Xh[:150], yh[:150])
        assert not verdict.any_alarm()
        assert verdict.n_observed == 150
        assert "quiet" in verdict.describe()

    def test_martingale_fires_on_label_shift(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard().arm(flow)
        verdict = guard.observe(flow, Xh[:200], yh[:200] + 5.0)
        assert verdict.exchangeability_alarm
        assert "exchangeability rejected" in verdict.describe()

    def test_detector_fires_on_covariate_shift(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard().arm(flow)
        X_shift = Xh[:100].copy()
        X_shift[:, MONITORS] += 3.0
        y_shift = yh[:100]
        verdict = guard.observe(flow, X_shift, y_shift)
        assert verdict.covariate_alarm

    def test_zone_monitors_flag_the_undercovering_zone(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard(
            zone_window=40, zone_tolerance=0.10, zone_min_observations=20
        ).arm(flow)
        zones = np.where(np.arange(120) % 2 == 0, "inner", "outer")
        # Push only the "inner" chips out of their intervals.
        y_bad = yh[:120].copy()
        y_bad[zones == "inner"] += 5.0
        verdict = guard.observe(flow, Xh[:120], y_bad, zones=zones)
        assert verdict.zone_alarms == ("inner",)
        coverage = guard.zone_coverage()
        assert coverage["inner"] < coverage["outer"]

    def test_disarm_and_rearm_reset_state(self, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard().arm(flow)
        guard.observe(flow, Xh[:200], yh[:200] + 5.0)
        assert guard.verdict().any_alarm()
        guard.disarm()
        assert not guard.armed
        guard.arm(flow)
        assert not guard.verdict().any_alarm()
        assert guard.n_observed_ == 0


class TestServiceIntegration:
    def test_start_arms_the_guard(self, tmp_path, lot):
        flow, _, _ = lot
        guard = ShiftGuard()
        _service(tmp_path, flow, guard)
        assert guard.armed

    def test_exchangeability_alarm_degrades_with_reason(self, tmp_path, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        _, service = _service(tmp_path, flow, guard)
        service.observe(Xh[:200], yh[:200] + 5.0)
        assert service.state is ServiceState.DEGRADED
        reasons = {reason for reason, _ in (
            (r.reason, r.detail) for r in service.health.downgrades()
        )}
        assert ReasonCode.EXCHANGEABILITY_ALARM in reasons
        assert service.last_shift_verdict_.exchangeability_alarm

    def test_covariate_alarm_degrades_with_reason(self, tmp_path, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        _, service = _service(tmp_path, flow, guard)
        X_shift = Xh[:100].copy()
        X_shift[:, MONITORS] += 3.0
        # Labels consistent with the shifted features: only the
        # covariate detector has grounds to complain.
        w = np.concatenate(
            [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
        )
        y_shift = X_shift @ w + np.random.default_rng(7).normal(
            scale=0.5, size=100
        )
        service.observe(X_shift, y_shift)
        reasons = {r.reason for r in service.health.downgrades()}
        assert ReasonCode.COVARIATE_SHIFT in reasons

    def test_new_alarms_are_audited_once(self, tmp_path, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        _, service = _service(tmp_path, flow, guard)
        service.observe(Xh[:200], yh[:200] + 5.0)
        service.observe(Xh[200:260], yh[200:260] + 5.0)
        entries = [
            r
            for r in service.health.transitions_
            if r.reason is ReasonCode.EXCHANGEABILITY_ALARM
        ]
        assert len(entries) == 1

    def test_recovery_blocked_while_shift_alarmed(self, tmp_path, lot):
        """Rolling coverage returning to target must NOT re-promote the
        service while an exchangeability alarm is latched."""
        flow, Xh, yh = lot
        guard = ShiftGuard()
        _, service = _service(tmp_path, flow, guard)
        service.observe(Xh[:200], yh[:200] + 5.0)
        assert service.state is ServiceState.DEGRADED
        # A long run of healthy labels clears the coverage monitor but
        # the martingale alarm is latched until re-arm.
        service.observe(Xh[200:299], yh[200:299])
        assert guard.verdict().exchangeability_alarm
        assert service.state is ServiceState.DEGRADED

    def test_repair_shift_requires_a_fitted_flow(self, tmp_path, lot):
        flow, Xh, _ = lot
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish(flow)
        service = VminServingService(registry, shift_guard=ShiftGuard())
        with pytest.raises(RejectedRequest, match="nothing to repair"):
            service.repair_shift(Xh[:50])

    def test_repair_shift_success_restores_ready(self, tmp_path, lot):
        from repro.shift import CovariateShiftDetector

        flow, Xh, yh = lot
        # A detector template at the conventional PSI cut so the modest
        # (repairable) 0.4-sigma shift still pages.
        guard = ShiftGuard(
            detector=CovariateShiftDetector(
                psi_threshold=0.25, alarm_fraction=0.25, min_observations=40
            )
        )
        _, service = _service(tmp_path, flow, guard)
        X_shift = Xh[:120].copy()
        X_shift[:, MONITORS] += 0.4
        # Labels stay consistent with the shifted features: the coverage
        # monitor must remain clean so the covariate alarm alone drives
        # the downgrade (and the repair alone can lift it).
        w = np.concatenate(
            [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
        )
        y_shift = X_shift @ w + np.random.default_rng(7).normal(
            scale=0.5, size=120
        )
        service.observe(X_shift[:100], y_shift[:100])
        assert service.state is ServiceState.DEGRADED
        assert service.last_shift_verdict_.covariate_alarm
        ess = service.repair_shift(
            X_shift,
            ratio_estimator=LogisticDensityRatio(ridge=4.0, random_state=0),
        )
        assert ess >= 10.0
        assert service.state is ServiceState.READY
        assert not guard.armed  # disarmed: the shift is now compensated
        assert service.last_shift_verdict_ is None
        notes = [
            r.detail
            for r in service.health.transitions_
            if r.reason is ReasonCode.RECALIBRATED
        ]
        assert any("weighted shift repair" in n for n in notes)

    def test_repair_shift_refusal_is_audited_and_raises(self, tmp_path, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        _, service = _service(tmp_path, flow, guard)
        X_far = Xh[:100].copy()
        X_far[:, MONITORS] += 1.5
        with pytest.raises(DegenerateWeightsError):
            service.repair_shift(X_far)
        details = [
            r.detail
            for r in service.health.transitions_
            if r.reason is ReasonCode.COVARIATE_SHIFT
        ]
        assert any("weighted repair refused" in d for d in details)
        assert not flow.weighted_active  # serving path untouched

    def test_hot_swap_rearms_after_repair(self, tmp_path, lot):
        flow, Xh, yh = lot
        guard = ShiftGuard()
        registry, service = _service(tmp_path, flow, guard)
        X_shift = Xh[:120].copy()
        X_shift[:, MONITORS] += 0.4
        service.repair_shift(
            X_shift,
            ratio_estimator=LogisticDensityRatio(ridge=4.0, random_state=0),
        )
        assert not guard.armed
        registry.publish(flow, reason="refit")
        service.hot_swap()
        assert guard.armed
        assert service.last_shift_verdict_ is None


class TestCampaign:
    def test_shift_campaign_passes_end_to_end(self, tmp_path):
        """The committed operating point must detect every injected
        shift, repair (or refuse) correctly, and end READY."""
        from repro.eval.stress import run_shift_campaign

        report = run_shift_campaign(tmp_path / "registry")
        assert report.ok(), report.to_table()
        assert report.phase("control").detection_latency is None
        assert report.phase("new_fab").repair == "weighted"
        assert report.phase("corner_drift").repair == "adaptive"
        assert report.phase("sensor_recal").repair == "refused+refit"
        assert report.n_recalibrations >= 1
        # Every downgrade carries an audited reason and detail.
        assert all(reason and detail for reason, detail in report.downgrades)
