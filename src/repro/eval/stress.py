"""Stress-test harness: degradation under data *and* execution faults.

The robustness claim of :mod:`repro.robust` is quantitative: under a
given fault campaign the served intervals should lose *bounded* coverage
relative to the clean baseline, paying for damage with width (inflation,
fallback) rather than with silent under-coverage.  This module measures
exactly that.  :func:`run_fault_campaign` serves one held-out lot through
a fitted :class:`~repro.robust.flow.RobustVminFlow` once clean and once
per fault scenario, and the resulting :class:`StressReport` tabulates
coverage, width, status, and inflation per scenario -- the robustness
analogue of the paper's Table III.

The second campaign mode targets the *execution* layer rather than the
data: :func:`run_execution_campaign` runs a small experiment grid once
clean, then once per :class:`~repro.robust.faults.ExecutionFault`
scenario with workers crashing or hanging mid-grid, and asserts that
the runtime (:mod:`repro.runtime`: retries, watchdog timeouts, requeue)
recovers every cell with results bit-identical to the clean run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.eval.experiments import ExperimentProfile, run_point_grid
from repro.eval.reporting import format_table
from repro.robust.faults import ExecutionFault, TaskCrashFault, TaskHangFault
from repro.runtime.retry import RetryPolicy

__all__ = [
    "ExecutionStressReport",
    "ExecutionStressResult",
    "StressReport",
    "StressResult",
    "run_execution_campaign",
    "run_fault_campaign",
]


@dataclass(frozen=True)
class StressResult:
    """Outcome of serving one fault scenario.

    Attributes
    ----------
    scenario, severity:
        Scenario identity (from the :class:`~repro.robust.faults.FaultScenario`).
    coverage, mean_width:
        Empirical coverage and average interval length (V) of the
        served intervals on the faulted batch.
    status:
        Served :class:`~repro.robust.fallback.DegradationStatus` value.
    inflation:
        Width multiplier the degradation policy charged.
    used_fallback:
        Whether the fallback model produced the band.
    unhealthy_fraction:
        Fraction of feature columns the guard flagged unhealthy.
    """

    scenario: str
    severity: float
    coverage: float
    mean_width: float
    status: str
    inflation: float
    used_fallback: bool
    unhealthy_fraction: float


@dataclass(frozen=True)
class StressReport:
    """Clean baseline plus per-scenario stress results.

    ``nominal_coverage`` / ``nominal_width`` come from serving the same
    batch with no faults injected; every :class:`StressResult` is read
    against them.
    """

    nominal_coverage: float
    nominal_width: float
    results: Tuple[StressResult, ...]

    def worst_coverage(self, scenario_prefix: Optional[str] = None) -> float:
        """Lowest served coverage, optionally restricted to scenarios
        whose name starts with ``scenario_prefix``."""
        selected = [
            r.coverage
            for r in self.results
            if scenario_prefix is None or r.scenario.startswith(scenario_prefix)
        ]
        if not selected:
            raise ValueError(
                f"no scenario matches prefix {scenario_prefix!r}"
            )
        return float(min(selected))

    def coverage_drop(self, scenario_prefix: Optional[str] = None) -> float:
        """Worst coverage loss versus nominal (positive = degradation)."""
        return self.nominal_coverage - self.worst_coverage(scenario_prefix)

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace report table (coverage in %, width in mV)."""
        rows = [
            [
                "(nominal)",
                0.0,
                "ok",
                self.nominal_coverage * 100.0,
                self.nominal_width * 1e3,
                1.0,
                "-",
                0.0,
            ]
        ]
        rows.extend(
            [
                r.scenario,
                r.severity,
                r.status,
                r.coverage * 100.0,
                r.mean_width * 1e3,
                r.inflation,
                "yes" if r.used_fallback else "no",
                r.unhealthy_fraction * 100.0,
            ]
            for r in self.results
        )
        return format_table(
            [
                "Scenario",
                "Severity",
                "Status",
                "Coverage (%)",
                "Len (mV)",
                "Inflation",
                "Fallback",
                "Unhealthy (%)",
            ],
            rows,
            title=title or "Fault-campaign stress report",
        )


def run_fault_campaign(flow, X: np.ndarray, y: np.ndarray, campaign) -> StressReport:
    """Serve a held-out lot through every scenario of a fault campaign.

    Parameters
    ----------
    flow:
        A *fitted* :class:`~repro.robust.flow.RobustVminFlow` (anything
        whose ``predict_interval`` returns a
        :class:`~repro.robust.fallback.DegradedPrediction` works).
    X, y:
        Clean held-out chips and their measured Vmin labels; every
        scenario corrupts a fresh copy of ``X``.
    campaign:
        An iterable of :class:`~repro.robust.faults.FaultScenario`
        (e.g. :meth:`~repro.robust.faults.FaultCampaign.standard`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y must be a matching 2-D/1-D pair, got {X.shape} and {y.shape}"
        )
    nominal = flow.predict_interval(X)
    results = []
    for scenario in campaign:
        prediction = flow.predict_interval(scenario.apply(X))
        results.append(
            StressResult(
                scenario=scenario.name,
                severity=float(scenario.severity),
                coverage=prediction.coverage(y),
                mean_width=prediction.mean_width,
                status=prediction.status.value,
                inflation=float(prediction.inflation),
                used_fallback=bool(prediction.used_fallback),
                unhealthy_fraction=prediction.health.unhealthy_fraction,
            )
        )
    return StressReport(
        nominal_coverage=nominal.coverage(y),
        nominal_width=nominal.mean_width,
        results=tuple(results),
    )


# ---------------------------------------------------------------------------
# execution-fault campaign (crashed / hung workers mid-grid)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionStressResult:
    """Outcome of one execution-fault scenario over the grid.

    Attributes
    ----------
    scenario:
        Scenario name (e.g. ``worker_crash``).
    recovered:
        Every cell completed despite the injected faults.
    identical:
        The recovered grid equals the clean grid bit for bit.
    n_cells, n_retried, n_failures:
        Grid size, cells that needed more than one attempt, and cells
        that failed even after retries.
    """

    scenario: str
    recovered: bool
    identical: bool
    n_cells: int
    n_retried: int
    n_failures: int


@dataclass(frozen=True)
class ExecutionStressReport:
    """Per-scenario recovery results of an execution-fault campaign."""

    results: Tuple[ExecutionStressResult, ...]

    def all_recovered(self) -> bool:
        """Whether every scenario completed every cell."""
        return all(r.recovered for r in self.results)

    def all_identical(self) -> bool:
        """Whether every scenario reproduced the clean grid bit for bit."""
        return all(r.identical for r in self.results)

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace report table (one row per scenario)."""
        rows = [
            [
                r.scenario,
                "yes" if r.recovered else "NO",
                "yes" if r.identical else "NO",
                r.n_cells,
                r.n_retried,
                r.n_failures,
            ]
            for r in self.results
        ]
        return format_table(
            ["Scenario", "Recovered", "Identical", "Cells", "Retried", "Failed"],
            rows,
            title=title or "Execution-fault campaign report",
        )


def _default_execution_scenarios(
    seed: int,
) -> Tuple[Tuple[str, ExecutionFault], ...]:
    """The standard execution campaign: crashes, repeat crashes, hangs."""
    return (
        ("worker_crash", TaskCrashFault(fraction=1.0, n_failures=1, seed=seed)),
        ("worker_crash_repeat", TaskCrashFault(fraction=0.6, n_failures=2, seed=seed + 1)),
        ("worker_hang", TaskHangFault(fraction=0.6, n_hangs=1, seed=seed + 2)),
    )


def run_execution_campaign(
    dataset,
    model_names: Sequence[str] = ("LR",),
    temperatures: Sequence[float] = (25.0,),
    read_points: Sequence[int] = (0,),
    scenarios: Optional[Sequence[Tuple[str, ExecutionFault]]] = None,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 2,
    timeout: float = 30.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> ExecutionStressReport:
    """Kill and hang grid workers mid-flight; assert the grid recovers.

    Runs the point grid once clean, then once per execution-fault
    scenario with the scenario's :meth:`~repro.robust.faults.ExecutionFault.wrap`
    installed as the grid's ``task_wrapper``.  The faulted runs execute
    with a retry policy (default: 3 attempts, fast deterministic
    backoff) and a per-cell ``timeout`` so crashes are retried and
    hangs are cut short by the cooperative watchdog; ``identical``
    then records whether retried work reproduced the clean results bit
    for bit -- the determinism-under-faults contract of
    ``docs/RUNTIME.md``.
    """
    profile = profile or ExperimentProfile.smoke()
    if scenarios is None:
        scenarios = _default_execution_scenarios(seed)
    if retry_policy is None:
        retry_policy = RetryPolicy(
            max_attempts=3,
            backoff_base=0.01,
            backoff_max=0.05,
            seed=seed,
        )
    clean = run_point_grid(
        dataset,
        model_names,
        temperatures,
        read_points,
        profile=profile,
        seed=seed,
        n_jobs=n_jobs,
    )
    results = []
    for name, fault in scenarios:
        faulted = run_point_grid(
            dataset,
            model_names,
            temperatures,
            read_points,
            profile=profile,
            seed=seed,
            n_jobs=n_jobs,
            retry_policy=retry_policy,
            timeout=timeout,
            on_error="capture",
            task_wrapper=fault.wrap,
        )
        recovered = faulted.ok and set(faulted) == set(clean)
        results.append(
            ExecutionStressResult(
                scenario=name,
                recovered=recovered,
                identical=recovered and dict(faulted) == dict(clean),
                n_cells=len(clean),
                n_retried=faulted.n_retried,
                n_failures=len(faulted.failures),
            )
        )
    return ExecutionStressReport(results=tuple(results))
