"""Precision fixture: near-misses the analyzer must NOT flag.

Every pattern here is a deliberate look-alike of a REP2xx/REP3xx
violation that is actually safe; the engine tests assert zero findings
for this package, so any false positive becomes a failing test.
"""
