"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

from repro.__main__ import main


class TestGenerate:
    def test_generates_and_saves(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        code = main(["generate", str(path), "--chips", "20", "--seed", "3"])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "20 chips" in out and "measurements written" in out

    def test_flow_csv_option(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        csv_path = tmp_path / "flow.csv"
        code = main(
            [
                "generate",
                str(path),
                "--chips",
                "10",
                "--flow-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()


class TestGenerateErrors:
    def test_chips_below_minimum_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--chips", "1"])
        assert code == 2
        assert "--chips must be >= 2" in capsys.readouterr().err

    def test_chips_not_an_integer_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--chips", "many"])
        assert code == 2
        assert "invalid" in capsys.readouterr().err

    def test_negative_seed_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--seed=-3"])
        assert code == 2
        assert "--seed must be a non-negative integer" in capsys.readouterr().err

    def test_unwritable_output_is_error_not_traceback(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "lot.npz"
        code = main(["generate", str(target), "--chips", "10"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestInfoErrors:
    def test_missing_dataset_is_error_not_traceback(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_non_archive_dataset_is_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.npz"
        bogus.write_text("this is not a zip archive")
        code = main(["info", str(bogus)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPredictErrors:
    def test_missing_dataset_is_error(self, tmp_path, capsys):
        code = main(["predict", "--dataset", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_seed_is_usage_error(self, capsys):
        code = main(["predict", "--seed=-1"])
        assert code == 2
        capsys.readouterr()


class TestInfo:
    def test_describes_saved_lot(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "12"])
        capsys.readouterr()
        code = main(["info", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "chips        : 12" in out
        assert "Vmin @" in out


class TestPredict:
    def test_predict_on_saved_lot(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "80", "--seed", "1"])
        capsys.readouterr()
        code = main(
            [
                "predict",
                "--dataset",
                str(path),
                "--trees",
                "10",
                "--temperature",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "mV" in out

    def test_bad_read_point_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(["predict", "--dataset", str(path), "--hours", "77"])
        assert code == 2
        assert "read point" in capsys.readouterr().err

    def test_bad_temperature_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(
            ["predict", "--dataset", str(path), "--temperature", "60", "--trees", "5"]
        )
        assert code == 2

    def test_bad_holdout_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(
            ["predict", "--dataset", str(path), "--holdout", "0.99", "--trees", "5"]
        )
        assert code == 2

    def test_tiny_calibration_is_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "20"])
        capsys.readouterr()
        code = main(["predict", "--dataset", str(path), "--trees", "5"])
        assert code == 2
        assert "too small" in capsys.readouterr().err
