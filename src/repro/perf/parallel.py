"""Deterministic parallel mapping for the training/evaluation hot path.

The experiment grid of the paper -- 5 model families x 2 quantiles x 4
CV folds x 3 temperatures x 6 read points -- is embarrassingly parallel:
split-conformal calibration is independent per model and per fold
(Romano et al., *Conformalized Quantile Regression*).  This module
provides the one primitive everything fans out through:

* :func:`parallel_map` -- an ordered map over a worker pool.  Results
  come back in input order regardless of completion order, worker
  exceptions propagate to the caller, and the map degrades to a plain
  serial loop when one job is requested, when there is at most one item,
  or when the pool cannot be created (restricted sandboxes).
* :func:`effective_n_jobs` -- resolves the job count from an explicit
  argument, the ``REPRO_N_JOBS`` environment variable, or the serial
  default, with ``-1`` meaning "all cores".
* :func:`spawn_seeds` -- deterministic per-task child seeds from one
  parent seed via :class:`numpy.random.SeedSequence`, so seeded work
  stays reproducible no matter how it is scheduled.

Determinism contract: for a pure ``fn``, ``parallel_map(fn, items, n)``
returns the same list for every ``n`` -- the test suite asserts this for
the cross-validation and experiment-grid callers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

import numpy as np

__all__ = ["effective_n_jobs", "parallel_map", "spawn_seeds"]

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_N_JOBS"


def effective_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Resolve the worker count for a parallel region.

    ``None`` defers to the ``REPRO_N_JOBS`` environment variable and
    falls back to 1 (serial) -- the deterministic-by-default posture.
    ``-1`` means one worker per available core; any other value must be
    a positive integer.
    """
    if n_jobs is None:
        raw = os.environ.get(_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def spawn_seeds(seed: Optional[int], n: int) -> List[Optional[int]]:
    """``n`` independent child seeds derived deterministically from ``seed``.

    A ``None`` parent yields ``None`` children (fresh entropy per task,
    explicitly not reproducible).  Otherwise children come from
    ``SeedSequence(seed).spawn`` and are stable across processes,
    platforms, and scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if seed is None:
        return [None] * n
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: Optional[int] = None,
    backend: str = "thread",
) -> List[R]:
    """Map ``fn`` over ``items`` with ordered results.

    Parameters
    ----------
    fn:
        The per-item worker.  Must be pure with respect to shared state;
        for ``backend="process"`` it must also be picklable (a top-level
        function), which is why ``"thread"`` is the default -- the numpy
        kernels dominating this codebase release the GIL, and closures
        over local data (fold builders, experiment cells) stay usable.
    items:
        The work list; consumed eagerly so the result order is defined.
    n_jobs:
        Worker count; ``None`` resolves via :func:`effective_n_jobs`
        (``REPRO_N_JOBS`` or serial).
    backend:
        ``"thread"`` or ``"process"``.

    Results are collected in input order.  The first worker exception is
    re-raised in the caller.  If the pool itself cannot be created the
    map silently degrades to the serial loop -- same results, no
    speedup -- so callers never need a fallback path of their own.
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"backend must be 'thread' or 'process', got {backend!r}"
        )
    work = list(items)
    jobs = effective_n_jobs(n_jobs)
    if jobs == 1 or len(work) <= 1:
        return _serial_map(fn, work)
    executor_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    try:
        pool = executor_cls(max_workers=min(jobs, len(work)))
    except (OSError, RuntimeError, PermissionError):
        # Restricted environments (no spawn semaphores, thread limits):
        # keep the results identical and just give up the speedup.
        return _serial_map(fn, work)
    with pool:
        # list() drains the ordered iterator; the first worker exception
        # re-raises here, in the caller's frame.
        return list(pool.map(fn, work))
