"""Drift-triggered online recalibration and republication.

The flow already recalibrates *in memory*: a coverage alarm switches
:class:`~repro.robust.flow.RobustVminFlow` onto Gibbs-Candès adaptive
margins and every observed label updates them.  That state, however,
lives only in the serving process -- a restart would come back up on
the stale registry bundle and re-learn the drift from scratch.
:class:`DriftRecalibrator` closes that gap: it watches the label
feedback stream through :meth:`~repro.serve.service.VminServingService.
observe`, and once the flow has gone adaptive *and* enough fresh labels
have accumulated, it republishes the recalibrated flow to the registry
as a new version (reason ``recalibrated``, parent = the version it
drifted from) and hot-swaps the service onto it -- making the adaptive
state durable and auditable.

Zero-label ingests are explicit no-ops, mirroring the flow contract:
the ATE legitimately delivers empty feedback batches and those must not
count toward (or reset) the recalibration trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.serve.health import ReasonCode
from repro.serve.service import VminServingService

__all__ = ["DriftRecalibrator", "RecalibrationEvent"]


@dataclass(frozen=True)
class RecalibrationEvent:
    """One completed recalibration republication.

    Attributes
    ----------
    version:
        The new registry version holding the recalibrated bundle.
    parent:
        The version the service was on when drift was detected.
    n_labels:
        Fresh labels ingested since the previous republication (the
        evidence behind this one).
    alpha_t:
        The adaptive miscoverage level at publication time -- how far
        Gibbs-Candès had moved off the nominal ``alpha``.
    """

    version: str
    parent: str
    n_labels: int
    alpha_t: float

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"republished {self.parent} -> {self.version} after "
            f"{self.n_labels} labels (alpha_t={self.alpha_t:.3f})"
        )


class DriftRecalibrator:
    """Republish the served flow once online recalibration has evidence.

    Parameters
    ----------
    service:
        The serving process whose label stream and registry this
        recalibrator manages.
    min_labels:
        Fresh labels that must accumulate *after* the flow goes
        adaptive before a republication fires -- republishing on the
        alarm itself would persist margins fitted to a handful of
        points.
    """

    def __init__(self, service: VminServingService, min_labels: int = 50) -> None:
        if min_labels < 1:
            raise ValueError(f"min_labels must be >= 1, got {min_labels}")
        self.service = service
        self.min_labels = int(min_labels)
        self._labels_since_publish = 0
        self.events_: List[RecalibrationEvent] = []

    def ingest(
        self, X: np.ndarray, y: np.ndarray
    ) -> Optional[RecalibrationEvent]:
        """Feed one labelled batch through the service; maybe republish.

        Calls :meth:`~repro.serve.service.VminServingService.observe`
        (so the monitor and the adaptive margins update exactly once),
        counts the labels toward the republication budget, and when the
        flow is adaptive with at least ``min_labels`` of evidence,
        publishes the recalibrated flow as a new registry version and
        hot-swaps onto it.  Returns the :class:`RecalibrationEvent`
        when a republication happened, else ``None``.  Empty batches
        are no-ops.
        """
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1 and y.shape[0] == 0:
            return None
        self.service.observe(X, y)
        self._labels_since_publish += int(y.shape[0])
        return self.maybe_republish()

    def maybe_republish(self) -> Optional[RecalibrationEvent]:
        """Republish now if the trigger conditions hold, else ``None``."""
        service = self.service
        model = service.served_model
        parent = service.model_version
        if model is None or not getattr(model, "adaptive_active", False):
            return None
        if self._labels_since_publish < self.min_labels:
            return None
        alpha_t = float(model.adaptive_.alpha_t)
        parent_name = (
            parent if parent in service.registry.versions() else None
        )
        record = service.registry.publish(
            model,
            reason="recalibrated",
            parent=parent_name,
            metadata={
                "alpha_t": alpha_t,
                "n_labels": self._labels_since_publish,
                "recalibrations": int(model.recalibrations_),
            },
        )
        service.health.note(
            ReasonCode.RECALIBRATED,
            f"published {record.name} (parent {parent}, "
            f"alpha_t={alpha_t:.3f})",
        )
        service.hot_swap()
        event = RecalibrationEvent(
            version=record.name,
            parent=parent,
            n_labels=self._labels_since_publish,
            alpha_t=alpha_t,
        )
        self.events_.append(event)
        self._labels_since_publish = 0
        return event
