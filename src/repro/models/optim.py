"""First-order optimisers for the numpy neural network.

The paper's MLP (Section IV-C.4) is trained with Adam (Kingma & Ba, 2015)
at learning rate 0.01.  Because :mod:`repro.models.nn` implements backprop
by hand, the optimisers here operate on plain lists of numpy parameter
arrays and their gradients -- no autograd framework is involved.

Both optimisers mutate the parameter arrays in place, which lets the
network keep stable references to its weight matrices across steps.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["Adam", "SGD"]


class Adam:
    """Adam optimiser with bias-corrected first/second moment estimates.

    Parameters
    ----------
    learning_rate:
        Step size :math:`\\alpha` (paper uses 0.01).
    beta1, beta2:
        Exponential decay rates for the first and second moment estimates.
    epsilon:
        Numerical stabiliser added to the denominator.
    """

    def __init__(
        self,
        learning_rate: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must lie in [0, 1), got {beta1}, {beta2}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._first_moments: List[np.ndarray] = []
        self._second_moments: List[np.ndarray] = []
        self._step_count = 0

    def _ensure_state(self, parameters: Sequence[np.ndarray]) -> None:
        if not self._first_moments:
            self._first_moments = [np.zeros_like(p) for p in parameters]
            self._second_moments = [np.zeros_like(p) for p in parameters]
        elif len(self._first_moments) != len(parameters):
            raise ValueError(
                "parameter list length changed between steps: "
                f"{len(self._first_moments)} vs {len(parameters)}"
            )

    def step(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        """Apply one Adam update to ``parameters`` in place."""
        if len(parameters) != len(gradients):
            raise ValueError(
                f"got {len(parameters)} parameters but {len(gradients)} gradients"
            )
        self._ensure_state(parameters)
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, grad, m, v in zip(
            parameters, gradients, self._first_moments, self._second_moments
        ):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        """Forget all moment estimates (e.g. before refitting a model)."""
        self._first_moments = []
        self._second_moments = []
        self._step_count = 0


class SGD:
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must lie in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocities: List[np.ndarray] = []

    def step(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        """Apply one (momentum-)SGD update to ``parameters`` in place."""
        if len(parameters) != len(gradients):
            raise ValueError(
                f"got {len(parameters)} parameters but {len(gradients)} gradients"
            )
        if not self._velocities:
            self._velocities = [np.zeros_like(p) for p in parameters]
        elif len(self._velocities) != len(parameters):
            raise ValueError(
                "parameter list length changed between steps: "
                f"{len(self._velocities)} vs {len(parameters)}"
            )
        for param, grad, velocity in zip(parameters, gradients, self._velocities):
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity

    def reset(self) -> None:
        """Forget accumulated momentum."""
        self._velocities = []
