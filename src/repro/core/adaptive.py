"""Online / adaptive conformal inference for in-field deployment.

The paper's conclusion names embedding the predictor "in the in-field
systems to secure long-term reliability" as future work.  In the field,
chips age and the data distribution drifts, breaking the exchangeability
assumption behind split CP/CQR.  Adaptive Conformal Inference
(Gibbs & Candès, 2021) restores *long-run* coverage under arbitrary
drift by feedback control on the miscoverage level:

.. math::

    \\alpha_{t+1} = \\alpha_t + \\gamma\\,(\\alpha - \\mathrm{err}_t),

where ``err_t`` is 1 when the latest observed label escaped its interval.
When coverage falls behind, ``α_t`` drops and intervals widen; when the
predictor is over-covering, intervals tighten.

:class:`AdaptiveConformalPredictor` wraps a fitted conformal regressor
(anything with a recomputable margin from stored calibration scores) in
the streaming protocol: ``predict_interval`` → observe ``y`` → ``update``.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.core.calibration import conformal_quantile_sorted
from repro.core.intervals import PredictionIntervals
from repro.core.scores import cqr_score
from repro.models.base import BaseRegressor, check_fitted, check_X_y
from repro.models.quantile import QuantileBandRegressor

__all__ = ["AdaptiveConformalPredictor"]


class _SortedScoreWindow:
    """Calibration scores in arrival order plus a sorted mirror.

    The streaming loop needs two views of the same data: arrival order
    (so a bounded window evicts the *oldest* score) and ascending order
    (so the conformal quantile is a direct index instead of an ``O(n)``
    partition per prediction).  Insertion locates its slot by bisection;
    eviction removes the expired value from the mirror the same way, so
    no float is ever compared with ``==``.
    """

    __slots__ = ("_window", "_arrival", "_sorted")

    def __init__(self, scores: Iterable[float], window: Optional[int]) -> None:
        self._window = window
        # deque(maxlen=window) keeps exactly the trailing window of the
        # seed, matching the previous list[-window:] semantics.
        self._arrival = deque((float(s) for s in scores), maxlen=window)
        self._sorted = sorted(self._arrival)

    def append(self, score: float) -> None:
        score = float(score)
        if self._window is not None and len(self._arrival) == self._window:
            oldest = self._arrival[0]
            del self._sorted[bisect.bisect_left(self._sorted, oldest)]
        self._arrival.append(score)
        bisect.insort(self._sorted, score)

    def sorted_array(self) -> np.ndarray:
        return np.asarray(self._sorted, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._arrival)


class AdaptiveConformalPredictor:
    """Streaming CQR with the Gibbs-Candès α update.

    Parameters
    ----------
    estimator:
        Unfitted quantile-capable template (as in
        :class:`~repro.core.cqr.ConformalizedQuantileRegressor`).
    alpha:
        Long-run target miscoverage.
    gamma:
        Adaptation step size; 0 disables adaptation (plain split CQR
        evaluated online).
    window:
        Number of most recent scores kept for quantile computation;
        ``None`` keeps all (growing calibration set).
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        gamma: float = 0.05,
        window: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.estimator = estimator
        self.alpha = alpha
        self.gamma = gamma
        self.window = window
        self.band_: Optional[QuantileBandRegressor] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaptiveConformalPredictor":
        """Fit the quantile band and seed the score history from ``(X, y)``.

        Unlike split CQR there is no held-out calibration split: the
        streaming updates provide calibration, and the initial in-sample
        scores merely warm-start the quantile (the long-run guarantee
        comes from adaptation, not from the seed).
        """
        X, y = check_X_y(X, y)
        self.band_ = QuantileBandRegressor(self.estimator, alpha=self.alpha)
        self.band_.fit(X, y)
        lower, upper = self.band_.predict_interval(X)
        self._scores = _SortedScoreWindow(cqr_score(y, lower, upper), self.window)
        self._alpha_t = self.alpha
        self.alpha_history_: List[float] = [self.alpha]
        self.error_history_: List[bool] = []
        return self

    @classmethod
    def from_fitted(
        cls,
        band,
        scores,
        alpha: float = 0.1,
        gamma: float = 0.05,
        window: Optional[int] = None,
    ) -> "AdaptiveConformalPredictor":
        """Warm-start the streaming predictor around an already-fitted band.

        This is the recalibration hook used by
        :class:`repro.robust.RobustVminFlow`: a deployed split-CQR model
        already owns a fitted quantile band and a set of calibration
        scores, and re-fitting from scratch on a test floor is wasteful.
        ``from_fitted`` adopts both directly, so the Gibbs-Candès updates
        begin from the deployed model's state.

        Parameters
        ----------
        band:
            A fitted band exposing ``predict_interval(X) -> (lower, upper)``
            (e.g. ``ConformalizedQuantileRegressor.band_``).
        scores:
            Seed CQR calibration scores (e.g.
            ``ConformalizedQuantileRegressor.calibration_scores_``).
        alpha, gamma, window:
            As in the constructor.
        """
        if not hasattr(band, "predict_interval"):
            raise TypeError(
                f"band of type {type(band).__name__} has no predict_interval"
            )
        scores = np.asarray(scores, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError("scores must be a non-empty 1-D array")
        if not np.all(np.isfinite(scores)):
            raise ValueError("scores must be finite")
        predictor = cls(
            getattr(band, "template", None), alpha=alpha, gamma=gamma, window=window
        )
        predictor.band_ = band
        predictor._scores = _SortedScoreWindow(scores, window)
        predictor._alpha_t = alpha
        predictor.alpha_history_ = [alpha]
        predictor.error_history_ = []
        return predictor

    @property
    def alpha_t(self) -> float:
        """Current adapted miscoverage level."""
        check_fitted(self, "band_")
        return self._alpha_t

    def _current_scores(self) -> np.ndarray:
        """Windowed calibration scores, in ascending order.

        The ordering changed from arrival order to ascending when the
        buffer became sorted; every consumer (conformal quantile, max)
        is order-independent, so the values are unchanged bit-for-bit.
        """
        return self._scores.sorted_array()

    def _correction(self) -> float:
        """Conformal margin of the score window at the current ``α_t``.

        alpha_t may drift outside (0, 1) under heavy drift; the quantile
        lookup is clamped while the raw alpha_t keeps the dynamics.
        When the window is too small for the requested rank the most
        conservative finite correction (the max score, last element of
        the sorted window) stands in.
        """
        scores = self._current_scores()
        effective = float(np.clip(self._alpha_t, 1e-6, 1.0 - 1e-6))
        correction = conformal_quantile_sorted(scores, effective)
        if not np.isfinite(correction):
            correction = float(scores[-1])
        return correction

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Interval at the *current* adapted level ``α_t``."""
        check_fitted(self, "band_")
        correction = self._correction()
        lower, upper = self.band_.predict_interval(X)
        lower = lower - correction
        upper = upper + correction
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)

    def update(self, X: np.ndarray, y: np.ndarray) -> None:
        """Observe true labels for ``X`` and adapt ``α_t``.

        Rows are processed strictly in order and each is judged against
        the interval at its *then-current* ``α_t`` -- the margin moves
        row by row, exactly as if the batch had arrived one chip at a
        time.  Judging a whole batch against the entry margin instead
        removes the within-batch feedback the Gibbs-Candès analysis
        rests on: on a homogeneous batch every row repeats the same
        err, the α updates compound linearly, and a large enough batch
        ramps ``α_t`` far past the (0, 1) band, collapsing (or
        exploding) the intervals the *next* batch is served with.  The
        sorted score window keeps the per-row margin an O(log n)
        bisection rather than an O(n) partition, which is what makes
        the row-at-a-time protocol affordable.  Each row's CQR score
        joins the calibration history as it is consumed.
        """
        X, y = check_X_y(X, y)
        lower, upper = self.band_.predict_interval(X)
        new_scores = cqr_score(y, lower, upper)
        for i, score in enumerate(new_scores):
            correction = self._correction()
            low = lower[i] - correction
            high = upper[i] + correction
            if low > high:
                low = high = (low + high) / 2.0
            was_covered = bool(low <= y[i] <= high)
            error = 0.0 if was_covered else 1.0
            self._alpha_t = self._alpha_t + self.gamma * (self.alpha - error)
            self._scores.append(score)
            self.alpha_history_.append(self._alpha_t)
            self.error_history_.append(not was_covered)

    def long_run_coverage(self) -> float:
        """Fraction of streamed labels covered so far."""
        if not self.error_history_:
            raise RuntimeError("no updates observed yet")
        return 1.0 - float(np.mean(self.error_history_))
