"""``[tool.reprolint]`` configuration loading.

Configuration lives in ``pyproject.toml`` next to the code::

    [tool.reprolint]
    disable = ["REP108"]          # rule ids or names switched off
    enable = []                   # when non-empty, ONLY these run
    exclude = ["examples/*"]      # path globs never linted
    test-dirs = ["tests"]         # directory names classified as tests

TOML parsing uses :mod:`tomllib` (Python >= 3.11) and degrades
gracefully: on older interpreters without ``tomli`` installed the
defaults are used and a note is attached to :attr:`LintConfig.notes`
-- the linter never gains a third-party dependency.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - exercised only on <3.11
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

__all__ = ["LintConfig", "find_pyproject", "load_config"]

_DEFAULT_TEST_DIRS = ("tests",)


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration.

    ``enable`` beats ``disable``: when ``enable`` is non-empty only the
    listed rules run, mirroring how focused CI jobs are usually set up.
    Entries may be rule ids (``REP102``) or names
    (``no-float-equality``) interchangeably.
    """

    disable: FrozenSet[str] = frozenset()
    enable: FrozenSet[str] = frozenset()
    exclude: Tuple[str, ...] = ()
    test_dirs: FrozenSet[str] = frozenset(_DEFAULT_TEST_DIRS)
    notes: Tuple[str, ...] = ()

    def rule_enabled(self, rule_id: str, rule_name: str) -> bool:
        """Return whether a rule survives the enable/disable filters."""
        keys = {rule_id, rule_name}
        if self.enable:
            return bool(keys & self.enable)
        return not keys & self.disable

    def is_excluded(self, path: str) -> bool:
        """Return whether ``path`` matches any configured exclude glob."""
        candidates = (path, Path(path).as_posix())
        return any(
            fnmatch.fnmatch(candidate, pattern)
            for candidate in candidates
            for pattern in self.exclude
        )


def find_pyproject(start: Optional[str] = None) -> Optional[Path]:
    """Walk upward from ``start`` (default: cwd) to find pyproject.toml."""
    here = Path(start or ".").resolve()
    if here.is_file():
        here = here.parent
    for directory in (here, *here.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _as_str_tuple(value: Any, key: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"[tool.reprolint] {key} must be a list of strings")
    return tuple(value)


def load_config(start: Optional[str] = None) -> LintConfig:
    """Load ``[tool.reprolint]`` for the project containing ``start``.

    Missing file, missing section, or an unavailable TOML parser all
    yield the default config; malformed sections raise ``ValueError``
    so CI fails loudly rather than silently linting with defaults.
    """
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    if _toml is None:
        return LintConfig(
            notes=(
                f"{pyproject}: [tool.reprolint] ignored -- no TOML parser "
                "on this interpreter (Python < 3.11 without tomli)",
            )
        )
    with open(pyproject, "rb") as handle:
        data: Dict[str, Any] = _toml.load(handle)
    section = data.get("tool", {}).get("reprolint")
    if section is None:
        return LintConfig()
    if not isinstance(section, dict):
        raise ValueError("[tool.reprolint] must be a table")
    known = {"disable", "enable", "exclude", "test-dirs"}
    unknown = set(section) - known
    if unknown:
        raise ValueError(
            f"[tool.reprolint] has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    return LintConfig(
        disable=frozenset(_as_str_tuple(section.get("disable", []), "disable")),
        enable=frozenset(_as_str_tuple(section.get("enable", []), "enable")),
        exclude=_as_str_tuple(section.get("exclude", []), "exclude"),
        test_dirs=frozenset(
            _as_str_tuple(section.get("test-dirs", list(_DEFAULT_TEST_DIRS)), "test-dirs")
        ),
    )
