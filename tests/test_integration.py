"""End-to-end integration tests across the full library stack."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import (
    ConformalizedQuantileRegressor,
    FeatureSet,
    SiliconDataset,
    VminPredictionFlow,
)
from repro.eval.experiments import ExperimentProfile, run_region_experiment
from repro.features.selection import CFSSelectedRegressor
from repro.models import ObliviousBoostingRegressor, QuantileLinearRegression

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The exact flow advertised in the package docstring/README."""
        dataset = SiliconDataset.generate(seed=0)
        X, names = dataset.features(hours=0)
        y = dataset.target(temperature_c=25.0, hours=0)

        flow = VminPredictionFlow(alpha=0.1, random_state=0)
        flow.fit(X[:120], y[:120], feature_names=names)
        intervals = flow.predict_interval(X[120:])
        assert 0.7 <= intervals.coverage(y[120:]) <= 1.0
        assert 0.0 < intervals.mean_width < 0.1


class TestCrossStack:
    def test_cqr_over_selected_boosting_on_lot(self, lot):
        """Conformal wrapper + selection-inside-template + boosting base."""
        X, _ = lot.features(0)
        y = lot.target(125.0, 0) * 1000.0
        template = CFSSelectedRegressor(
            QuantileLinearRegression(), k=8, quantile=0.5
        )
        cqr = ConformalizedQuantileRegressor(
            template, alpha=0.1, random_state=0
        ).fit(X[:117], y[:117])
        intervals = cqr.predict_interval(X[117:])
        assert intervals.coverage(y[117:]) >= 0.7
        assert intervals.mean_width < 80.0  # mV

    def test_in_field_prediction_uses_history(self, lot):
        """Degradation prediction at 1008 h with full monitor history beats
        using time-zero monitors alone (information monotonicity)."""
        y = lot.target(25.0, 1008) * 1000.0
        X_full, _ = lot.features(1008)
        X_zero, _ = lot.features(0)
        profile = ExperimentProfile.smoke()

        def run(X):
            template = CFSSelectedRegressor(
                QuantileLinearRegression(), k=8, quantile=0.5
            )
            cqr = ConformalizedQuantileRegressor(
                template, alpha=0.1, random_state=0
            ).fit(X[:117], y[:117])
            return cqr.predict_interval(X[117:])

        full = run(X_full)
        zero = run(X_zero)
        # Both valid-ish; the history-informed one should not be wider by
        # much (usually strictly narrower).
        assert full.mean_width <= zero.mean_width * 1.25

    def test_region_experiment_determinism(self, lot):
        profile = ExperimentProfile.smoke()
        a = run_region_experiment(lot, "CQR LR", 25.0, 0, profile=profile)
        b = run_region_experiment(lot, "CQR LR", 25.0, 0, profile=profile)
        assert a.width == b.width and a.coverage == b.coverage


class TestExamples:
    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "production_screening.py",
            "infield_degradation.py",
            "monitor_value_study.py",
            "vmin_binning.py",
            "wafer_zone_guarantees.py",
            "degraded_monitors.py",
        ],
    )
    def test_example_runs_clean(self, script):
        """Every shipped example must run end-to-end in smoke mode."""
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script), "--smoke"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip(), "example produced no output"
