"""Per-rule tests for reprolint: each rule fires on a minimal bad
snippet and stays silent on the corresponding good one."""

import textwrap

import pytest

from repro.devtools import lint_source
from repro.devtools.rules import (
    AlphaValidationRule,
    DocstringCoverageRule,
    DunderAllRule,
    EstimatorContractRule,
    FloatEqualityRule,
    MutableDefaultRule,
    NoAssertRule,
    RngDisciplineRule,
)


def run_rule(rule_class, code, role="src"):
    return lint_source(
        textwrap.dedent(code), path="src/pkg/mod.py", role=role, rules=[rule_class()]
    )


class TestRngDiscipline:
    def test_fires_on_np_random_seed(self):
        findings = run_rule(
            RngDisciplineRule,
            """
            import numpy as np
            np.random.seed(0)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP101"]
        assert "seed" in findings[0].message

    def test_fires_on_legacy_draw_via_alias(self):
        findings = run_rule(
            RngDisciplineRule,
            """
            import numpy.random as npr
            x = npr.normal(0.0, 1.0, 10)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP101"]

    def test_fires_on_from_import(self):
        findings = run_rule(
            RngDisciplineRule,
            """
            from numpy.random import uniform
            x = uniform(0.0, 1.0)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP101"]

    def test_fires_on_randomstate(self):
        findings = run_rule(
            RngDisciplineRule,
            """
            import numpy as np
            rng = np.random.RandomState(7)
            """,
        )
        assert [f.rule_id for f in findings] == ["REP101"]
        assert "default_rng" in findings[0].message

    def test_silent_on_generator_discipline(self):
        findings = run_rule(
            RngDisciplineRule,
            """
            import numpy as np

            def draw(rng: np.random.Generator):
                seeded = np.random.default_rng(np.random.SeedSequence(1))
                return rng.normal(), seeded.uniform()
            """,
        )
        assert findings == []

    def test_applies_in_tests_too(self):
        findings = lint_source(
            "import numpy as np\nnp.random.seed(1)\n",
            path="tests/test_x.py",
            rules=[RngDisciplineRule()],
        )
        assert [f.rule_id for f in findings] == ["REP101"]


class TestFloatEquality:
    def test_fires_on_arithmetic_comparison(self):
        findings = run_rule(
            FloatEqualityRule,
            """
            def f(a, b, c):
                return (a + b) / 2.0 == c
            """,
        )
        assert [f.rule_id for f in findings] == ["REP102"]

    def test_fires_on_float_producing_call(self):
        findings = run_rule(
            FloatEqualityRule,
            """
            import numpy as np

            def f(x):
                return np.mean(x) != 1.5
            """,
        )
        assert [f.rule_id for f in findings] == ["REP102"]

    def test_zero_guard_is_exempt(self):
        findings = run_rule(
            FloatEqualityRule,
            """
            import numpy as np

            def f(x):
                std = np.std(x)
                if std == 0.0:
                    return 0.0
                return np.mean(x) / std
            """,
        )
        assert findings == []

    def test_parameter_dispatch_is_exempt(self):
        # `self.nu == 0.5` style dispatch on a user-set parameter must pass.
        findings = run_rule(
            FloatEqualityRule,
            """
            def kernel(nu):
                if nu == 0.5:
                    return "exponential"
                return "general"
            """,
        )
        assert findings == []

    def test_not_applied_to_tests(self):
        findings = lint_source(
            "def f(x):\n    return (x + 1.0) / 2.0 == 3.0\n",
            path="tests/test_exact.py",
            rules=[FloatEqualityRule()],
        )
        assert findings == []


class TestMutableDefaults:
    def test_fires_on_list_literal(self):
        findings = run_rule(
            MutableDefaultRule,
            """
            def accumulate(value, into=[]):
                into.append(value)
                return into
            """,
        )
        assert [f.rule_id for f in findings] == ["REP103"]

    def test_fires_on_dict_constructor_and_kwonly(self):
        findings = run_rule(
            MutableDefaultRule,
            """
            def configure(*, options=dict()):
                return options
            """,
        )
        assert [f.rule_id for f in findings] == ["REP103"]

    def test_silent_on_none_and_immutable_defaults(self):
        findings = run_rule(
            MutableDefaultRule,
            """
            def configure(options=None, scale=1.0, names=("a", "b")):
                if options is None:
                    options = {}
                return options, scale, names
            """,
        )
        assert findings == []


class TestNoAssert:
    def test_fires_in_src(self):
        findings = run_rule(
            NoAssertRule,
            """
            def check(x):
                assert x > 0, "x must be positive"
                return x
            """,
        )
        assert [f.rule_id for f in findings] == ["REP104"]

    def test_silent_in_tests(self):
        findings = lint_source(
            "def test_ok():\n    assert 1 + 1 == 2\n",
            path="tests/test_ok.py",
            rules=[NoAssertRule()],
        )
        assert findings == []

    def test_silent_on_explicit_raise(self):
        findings = run_rule(
            NoAssertRule,
            """
            def check(x):
                if x <= 0:
                    raise ValueError("x must be positive")
                return x
            """,
        )
        assert findings == []


class TestDunderAll:
    def test_fires_when_missing(self):
        findings = run_rule(DunderAllRule, "def f():\n    return 1\n")
        assert [f.rule_id for f in findings] == ["REP105"]
        assert "does not declare __all__" in findings[0].message

    def test_fires_on_phantom_export(self):
        findings = run_rule(
            DunderAllRule,
            """
            __all__ = ["gone"]
            """,
        )
        assert [f.rule_id for f in findings] == ["REP105"]
        assert "'gone'" in findings[0].message

    def test_fires_on_unlisted_public_def(self):
        findings = run_rule(
            DunderAllRule,
            """
            __all__ = ["listed"]

            def listed():
                return 1

            def unlisted():
                return 2
            """,
        )
        assert len(findings) == 1
        assert "unlisted" in findings[0].message

    def test_silent_on_consistent_module(self):
        findings = run_rule(
            DunderAllRule,
            """
            __all__ = ["CONSTANT", "helper"]

            CONSTANT = 3

            def helper():
                return CONSTANT

            def _private():
                return None
            """,
        )
        assert findings == []

    def test_conditional_bindings_count(self):
        findings = run_rule(
            DunderAllRule,
            """
            __all__ = ["parser"]

            try:
                import tomllib as parser
            except ImportError:
                parser = None
            """,
        )
        assert findings == []


class TestEstimatorContract:
    def test_fires_when_fit_returns_other_value(self):
        findings = run_rule(
            EstimatorContractRule,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self.coef_
            """,
        )
        assert [f.rule_id for f in findings] == ["REP106"]
        assert "return self" in findings[0].message

    def test_fires_when_fit_never_returns(self):
        findings = run_rule(
            EstimatorContractRule,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
            """,
        )
        assert [f.rule_id for f in findings] == ["REP106"]

    def test_fires_when_predict_mutates_state(self):
        findings = run_rule(
            EstimatorContractRule,
            """
            class Model:
                def predict_interval(self, X):
                    self.last_X_ = X
                    return X, X
            """,
        )
        assert [f.rule_id for f in findings] == ["REP106"]
        assert "read-only" in findings[0].message

    def test_silent_on_contract_compliant_class(self):
        findings = run_rule(
            EstimatorContractRule,
            """
            class Model:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self

                def predict(self, X):
                    prediction = X @ self.coef_
                    return prediction
            """,
        )
        assert findings == []

    def test_abstract_fit_and_super_chain_are_exempt(self):
        findings = run_rule(
            EstimatorContractRule,
            """
            class Base:
                def fit(self, X, y):
                    raise NotImplementedError

            class Child(Base):
                def fit(self, X, y):
                    return super().fit(X, y)
            """,
        )
        assert findings == []


class TestAlphaValidation:
    def test_fires_on_unchecked_alpha(self):
        findings = run_rule(
            AlphaValidationRule,
            """
            def quantile_index(n, alpha):
                return int(n * (1 - alpha))
            """,
        )
        assert [f.rule_id for f in findings] == ["REP107"]

    def test_silent_when_validated_locally(self):
        findings = run_rule(
            AlphaValidationRule,
            """
            def quantile_index(n, alpha):
                if not 0.0 < alpha < 1.0:
                    raise ValueError(f"alpha must be in (0, 1), got {alpha}")
                return int(n * (1 - alpha))
            """,
        )
        assert findings == []

    def test_silent_when_delegated(self):
        findings = run_rule(
            AlphaValidationRule,
            """
            def interval(scores, alpha):
                return conformal_quantile(scores, alpha)
            """,
        )
        assert findings == []

    def test_delegation_through_closure_counts(self):
        findings = run_rule(
            AlphaValidationRule,
            """
            def experiment(X, y, alpha=0.1):
                def builder():
                    return Regressor(alpha=alpha)
                return builder()
            """,
        )
        assert findings == []

    def test_private_helpers_exempt(self):
        findings = run_rule(
            AlphaValidationRule,
            """
            def _quantile_index(n, alpha):
                return int(n * (1 - alpha))

            class _Adapter:
                def __init__(self, alpha):
                    self.alpha = alpha
            """,
        )
        assert findings == []


class TestDocstringCoverage:
    def test_fires_on_missing_module_docstring(self):
        findings = run_rule(DocstringCoverageRule, "__all__ = []\n")
        assert [f.rule_id for f in findings] == ["REP108"]
        assert "module has no docstring" in findings[0].message

    def test_fires_on_undocumented_export(self):
        findings = run_rule(
            DocstringCoverageRule,
            '''
            """Module docstring."""

            __all__ = ["exported"]

            def exported():
                return 1
            ''',
        )
        assert [f.rule_id for f in findings] == ["REP108"]
        assert "exported" in findings[0].message

    def test_silent_on_documented_module(self):
        findings = run_rule(
            DocstringCoverageRule,
            '''
            """Module docstring."""

            __all__ = ["CONSTANT", "exported"]

            CONSTANT = 2

            def exported():
                """Do the thing."""
                return CONSTANT

            def _private_without_docstring():
                return None
            ''',
        )
        assert findings == []


class TestInlineSuppression:
    @pytest.mark.parametrize("token", ["REP104", "no-assert-in-src", "all"])
    def test_disable_comment_silences_the_line(self, token):
        code = f"def f(x):\n    assert x  # reprolint: disable={token}\n    return x\n"
        findings = lint_source(code, path="src/pkg/mod.py", rules=[NoAssertRule()])
        assert findings == []

    def test_disable_comment_is_line_scoped(self):
        code = (
            "def f(x):\n"
            "    assert x  # reprolint: disable=REP104\n"
            "    assert x\n"
            "    return x\n"
        )
        findings = lint_source(code, path="src/pkg/mod.py", rules=[NoAssertRule()])
        assert len(findings) == 1
        assert findings[0].line == 3

    def test_unrelated_rule_not_suppressed(self):
        code = "def f(x):\n    assert x  # reprolint: disable=REP101\n    return x\n"
        findings = lint_source(code, path="src/pkg/mod.py", rules=[NoAssertRule()])
        assert len(findings) == 1
