"""Evaluation: metrics, cross-validation, and the experiment registry.

Implements the paper's protocol (Section IV-B): 4-fold cross-validation
with a shared seed across all methods, :math:`R^2`/RMSE for point
prediction, and average interval length / empirical coverage for region
prediction.  :mod:`repro.eval.experiments` encodes each table and figure
of the paper as a declarative experiment the benchmark harness runs, and
:mod:`repro.eval.stress` measures coverage/length degradation under the
fault campaigns of :mod:`repro.robust`.
"""

from repro.eval.diagnostics import (
    CoverageReport,
    calibration_curve,
    coverage_by_group,
    width_quantiles,
)
from repro.eval.crossval import (
    IntervalCVResult,
    KFold,
    PointCVResult,
    cross_validate_intervals,
    cross_validate_point,
)
from repro.eval.metrics import (
    coverage_width_criterion,
    empirical_coverage,
    mean_interval_width,
    pinball_score,
    r2_score,
    rmse,
)
from repro.eval.experiments import (
    POINT_MODEL_NAMES,
    REGION_METHOD_NAMES,
    FeatureSet,
    run_point_experiment,
    run_region_experiment,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.stress import StressReport, StressResult, run_fault_campaign

__all__ = [
    "CoverageReport",
    "FeatureSet",
    "IntervalCVResult",
    "KFold",
    "POINT_MODEL_NAMES",
    "PointCVResult",
    "REGION_METHOD_NAMES",
    "StressReport",
    "StressResult",
    "coverage_width_criterion",
    "cross_validate_intervals",
    "cross_validate_point",
    "empirical_coverage",
    "calibration_curve",
    "coverage_by_group",
    "format_series",
    "format_table",
    "width_quantiles",
    "mean_interval_width",
    "pinball_score",
    "r2_score",
    "rmse",
    "run_fault_campaign",
    "run_point_experiment",
    "run_region_experiment",
]
