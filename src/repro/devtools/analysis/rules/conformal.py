"""REP3xx: conformal-prediction data hygiene.

Split conformal prediction's coverage guarantee rests on one invariant:
the calibration set must stay *exchangeable* with test data, which
means it can never influence model fitting.  These rules taint-track
calibration arrays from where they are born -- the
``split_train_calibration`` seam, ``X_cal``/``y_cal``-style names,
``calibration_scores_`` attribute reads, parameter annotations naming
calibration -- and flag any flow into a ``fit``-like call, including
flows that cross function and module boundaries through the
inter-procedural parameter-leak summaries.

REP302 covers the temporal version of the same mistake: refitting a
model after it has been calibrated silently invalidates the stored
conformal scores, so a ``.fit(...)`` on a calibrated object without a
subsequent recalibration is flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.devtools.analysis.callgraph import owned_nodes
from repro.devtools.analysis.dataflow import TaintState
from repro.devtools.analysis.interproc import (
    SinkSpec,
    compute_param_leaks,
    find_source_flows,
)
from repro.devtools.analysis.project import FunctionInfo
from repro.devtools.analysis.rules.base import AnalysisRule, ProjectContext
from repro.devtools.diagnostics import Diagnostic

__all__ = ["CalibrationLeakRule", "RefitAfterCalibrateRule"]

# Functions whose call means "training happens here".  ``calibrate`` is
# deliberately absent: feeding calibration data to calibrate() is the
# whole point of split CP.
_FIT_SINKS = frozenset({"fit", "fit_binned", "partial_fit", "train_on"})

# Seam functions returning (train, calibration) index/array tuples,
# mapped to the tuple positions that carry calibration data.
_SPLIT_SEAMS: Dict[str, Tuple[int, ...]] = {
    "split_train_calibration": (1,),
    # sklearn-style: X_train, X_test, y_train, y_test -- the held-out
    # halves are the calibration set in a split-CP pipeline.
    "train_test_split": (1, 3),
}


def _is_calibration_name(name: str) -> bool:
    """Token-wise match: ``X_cal``, ``cal_idx``, ``calibration_scores_``.

    Matching whole underscore-separated tokens keeps ``scale``,
    ``local`` and ``calc`` out of scope.
    """
    tokens = [t for t in name.lower().split("_") if t]
    return any(t == "cal" or t.startswith("calib") for t in tokens)


def _call_terminal_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


class CalibrationLeakRule(AnalysisRule):
    """REP301: calibration data must never reach a fit-like call."""

    rule_id = "REP301"
    name = "calibration-data-in-fit"
    summary = "calibration array flows into a fit()/training call"
    rationale = (
        "Split conformal prediction guarantees coverage only while the "
        "calibration set stays exchangeable with test data; any use of "
        "calibration samples during model fitting breaks the guarantee "
        "silently -- intervals keep looking plausible but under-cover."
    )

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        sink = SinkSpec(call_names=_FIT_SINKS)
        leaks = compute_param_leaks(context, sink)

        def expr_sources_for(function: FunctionInfo):
            def sources(expr: ast.expr) -> Iterable:
                if isinstance(expr, ast.Name) and _is_calibration_name(expr.id):
                    return (("cal", expr.id),)
                if isinstance(expr, ast.Attribute) and _is_calibration_name(
                    expr.attr
                ):
                    return (("cal", expr.attr),)
                return ()

            return sources

        def seams_for(function: FunctionInfo):
            def seam(call: ast.Call) -> Optional[Tuple[Iterable, Iterable[int]]]:
                positions = _SPLIT_SEAMS.get(_call_terminal_name(call))
                if positions is None:
                    return None
                return (("cal", _call_terminal_name(call)),), positions

            return seam

        def initial_for(function: FunctionInfo) -> Optional[TaintState]:
            """Parameters annotated as calibration data are sources."""
            if isinstance(function.node, ast.Lambda):
                return None
            initial: TaintState = {}
            args = function.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.annotation is None:
                    continue
                try:
                    rendered = ast.unparse(arg.annotation).lower()
                except Exception:  # pragma: no cover - malformed annotation
                    continue
                if "calib" in rendered:
                    initial[arg.arg] = frozenset({("cal", arg.arg)})
            return initial or None

        findings = find_source_flows(
            context, expr_sources_for, seams_for, sink, leaks, initial_for
        )
        diagnostics: List[Diagnostic] = []
        seen: Set[Tuple[str, int, int]] = set()
        for finding in findings:
            module = context.module_of(finding.function)
            if module is None:
                continue
            key = (module.path, finding.call.lineno, finding.call.col_offset)
            if key in seen:
                continue
            seen.add(key)
            names = ", ".join(
                sorted(
                    str(label[1])
                    for label in finding.labels
                    if isinstance(label, tuple) and label[0] == "cal"
                )
            )
            route = (
                f" via {finding.via}()" if finding.via else ""
            )
            diagnostics.append(
                self.diagnostic(
                    module,
                    finding.call,
                    f"calibration data ({names}) reaches a training call"
                    f"{route}; split-CP coverage requires calibration "
                    "samples stay out of fitting",
                )
            )
        return diagnostics


class RefitAfterCalibrateRule(AnalysisRule):
    """REP302: refitting a calibrated model invalidates its scores."""

    rule_id = "REP302"
    name = "refit-after-calibrate"
    summary = "model refit after calibration without recalibrating"
    rationale = (
        "Conformal scores are residuals of one specific fitted model; "
        "calling fit() again leaves calibration_scores_ describing a "
        "model that no longer exists, so every interval built afterwards "
        "is miscalibrated until calibrate() runs again."
    )

    _CALIBRATORS = frozenset({"calibrate", "recalibrate", "conformalize"})

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for function in context.functions():
            if isinstance(function.node, ast.Lambda):
                continue
            module = context.module_of(function)
            if module is None:
                continue
            events = self._events(function)
            calibrated: Dict[str, bool] = {}
            for index, (_, receiver, kind, node) in enumerate(events):
                if kind == "calibrate":
                    calibrated[receiver] = True
                elif kind == "fit" and calibrated.get(receiver):
                    calibrated[receiver] = False
                    # Refit followed by recalibration is the correct
                    # update sequence; only an *unrecalibrated* refit
                    # leaves stale scores behind.
                    recalibrated = any(
                        later[1] == receiver and later[2] == "calibrate"
                        for later in events[index + 1 :]
                    )
                    if recalibrated:
                        continue
                    diagnostics.append(
                        self.diagnostic(
                            module,
                            node,
                            f"'{receiver}' is refit after calibrate(); its "
                            "stored conformal scores now describe a stale "
                            "model -- recalibrate after fitting",
                        )
                    )
        return diagnostics

    def _events(
        self, function: FunctionInfo
    ) -> List[Tuple[Tuple[int, int], str, str, ast.AST]]:
        """(position, receiver-root, 'calibrate'|'fit', node), source order."""
        events: List[Tuple[Tuple[int, int], str, str, ast.AST]] = []
        for node in owned_nodes(function):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                root = _receiver_root(node.func.value)
                if root is None:
                    continue
                if node.func.attr in self._CALIBRATORS:
                    events.append(
                        ((node.lineno, node.col_offset), root, "calibrate", node)
                    )
                elif node.func.attr in _FIT_SINKS:
                    events.append(
                        ((node.lineno, node.col_offset), root, "fit", node)
                    )
            elif isinstance(node, ast.Assign):
                # ``model.calibration_scores_ = ...`` marks the object
                # calibrated even without a calibrate() method.
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and _is_calibration_name(target.attr)
                        and _receiver_root(target.value) is not None
                    ):
                        events.append(
                            (
                                (node.lineno, node.col_offset),
                                _receiver_root(target.value) or "",
                                "calibrate",
                                node,
                            )
                        )
        events.sort(key=lambda event: event[0])
        return events


def _receiver_root(expr: ast.expr) -> Optional[str]:
    """Root variable of an attribute chain (``self`` for ``self.band_``)."""
    current = expr
    while isinstance(current, ast.Attribute):
        current = current.value
    return current.id if isinstance(current, ast.Name) else None
