"""Rolling empirical-coverage monitoring with alarm thresholds.

Split CQR promises marginal coverage ``>= 1 - alpha`` only under
exchangeability; in the field, aging drifts the feature distribution
and the guarantee can break *silently* -- intervals keep coming, they
are just wrong more often than advertised.  The only observable symptom
is the realized coverage of labels that do eventually get measured, so
:class:`CoverageMonitor` tracks exactly that: a rolling window of
covered / escaped outcomes, compared against an alarm threshold
``target - tolerance``.

An alarm is a *transition* event (armed while healthy, fired once when
the rolling rate crosses below the threshold, re-armed after recovery),
so a sustained breach produces one actionable :class:`CoverageAlarm`
rather than one per chip.  The intended reaction -- wired up by
:class:`repro.robust.RobustVminFlow` -- is online recalibration via
:class:`repro.core.adaptive.AdaptiveConformalPredictor` (Gibbs &
Candès), whose feedback on the miscoverage level restores long-run
coverage under arbitrary drift.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["CoverageAlarm", "CoverageMonitor", "CoverageTransition"]


@dataclass(frozen=True)
class CoverageAlarm:
    """One coverage-breach event.

    Attributes
    ----------
    at_observation:
        1-based index of the streamed label whose update fired the alarm.
    rolling_coverage:
        The windowed coverage at firing time.
    threshold:
        The alarm threshold (``target - tolerance``) that was crossed.
    """

    at_observation: int
    rolling_coverage: float
    threshold: float

    def describe(self) -> str:
        """Human-readable alarm line."""
        return (
            f"coverage alarm at observation {self.at_observation}: "
            f"rolling coverage {self.rolling_coverage:.1%} "
            f"< threshold {self.threshold:.1%}"
        )


@dataclass(frozen=True)
class CoverageTransition:
    """One alarm-state *transition* (enter or exit), with its context.

    Where :class:`CoverageAlarm` records only breach events, the
    transition log records the full hysteresis trajectory -- when the
    monitor entered the alarmed state and when it recovered past the
    re-arm level -- so the serving health state machine (and tests) can
    assert the enter/exit pairing instead of polling ``in_alarm_``.

    Attributes
    ----------
    kind:
        ``"enter"`` when the rolling rate crossed below the threshold,
        ``"exit"`` when it recovered to the full target (hysteresis).
    at_observation:
        1-based index of the streamed label that caused the transition.
    rolling_coverage:
        The windowed coverage at transition time.
    threshold:
        The alarm threshold (``target - tolerance``) in force.
    timestamp:
        Wall-clock seconds (``time.time()``) when the transition was
        recorded -- for operational logs; ordering assertions should use
        ``at_observation``, which is deterministic.
    """

    kind: str
    at_observation: int
    rolling_coverage: float
    threshold: float
    timestamp: float

    def describe(self) -> str:
        """Human-readable transition line."""
        verb = "entered" if self.kind == "enter" else "exited"
        return (
            f"{verb} alarm state at observation {self.at_observation}: "
            f"rolling coverage {self.rolling_coverage:.1%} "
            f"(threshold {self.threshold:.1%})"
        )


class CoverageMonitor:
    """Windowed coverage tracking with hysteresis alarms.

    Parameters
    ----------
    target_coverage:
        The promised marginal coverage (``1 - alpha``).
    window:
        Number of most recent outcomes the rolling rate is computed
        over; small windows react faster, large windows alarm with
        fewer false positives.
    tolerance:
        Allowed slack below target before alarming -- finite-sample
        coverage fluctuates by ~``sqrt(p(1-p)/window)`` even with a
        perfectly calibrated predictor, so the threshold must sit below
        the target.
    min_observations:
        No alarm fires before this many outcomes have been observed.
    """

    def __init__(
        self,
        target_coverage: float = 0.9,
        window: int = 50,
        tolerance: float = 0.05,
        min_observations: int = 20,
    ) -> None:
        if not 0.0 < target_coverage < 1.0:
            raise ValueError(
                f"target_coverage must be in (0, 1), got {target_coverage}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 <= tolerance < target_coverage:
            raise ValueError(
                f"tolerance must be in [0, target_coverage), got {tolerance}"
            )
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.target_coverage = float(target_coverage)
        self.window = int(window)
        self.tolerance = float(tolerance)
        self.min_observations = int(min_observations)
        self._outcomes: List[bool] = []
        self.alarms_: List[CoverageAlarm] = []
        self.transitions_: List[CoverageTransition] = []
        self.in_alarm_ = False

    @property
    def threshold(self) -> float:
        """The rolling-coverage level below which the monitor alarms."""
        return self.target_coverage - self.tolerance

    @property
    def n_observed(self) -> int:
        """Total number of streamed outcomes so far."""
        return len(self._outcomes)

    def rolling_coverage(self) -> float:
        """Covered fraction over the most recent ``window`` outcomes."""
        if not self._outcomes:
            raise RuntimeError("no outcomes observed yet")
        recent = self._outcomes[-self.window :]
        return float(np.mean(recent))

    def update(self, covered) -> Optional[CoverageAlarm]:
        """Stream a batch of covered/escaped outcomes, in order.

        Each outcome advances the rolling rate by one step; the alarm
        condition is checked after every step so a breach is located at
        the exact observation that caused it.  Returns the first alarm
        fired by this batch (if any) -- all alarms are also appended to
        :attr:`alarms_`.
        """
        outcomes = np.asarray(covered, dtype=bool).ravel()
        first: Optional[CoverageAlarm] = None
        for outcome in outcomes:
            self._outcomes.append(bool(outcome))
            if self.n_observed < self.min_observations:
                continue
            rate = self.rolling_coverage()
            if rate < self.threshold:
                if not self.in_alarm_:
                    alarm = CoverageAlarm(
                        at_observation=self.n_observed,
                        rolling_coverage=rate,
                        threshold=self.threshold,
                    )
                    self.alarms_.append(alarm)
                    self._record_transition("enter", rate)
                    self.in_alarm_ = True
                    if first is None:
                        first = alarm
            elif rate >= self.target_coverage:
                # Hysteresis: re-arm only after full recovery to target,
                # so an oscillation around the threshold is one event.
                if self.in_alarm_:
                    self._record_transition("exit", rate)
                self.in_alarm_ = False
        return first

    def _record_transition(self, kind: str, rate: float) -> None:
        """Append one enter/exit event to :attr:`transitions_`."""
        self.transitions_.append(
            CoverageTransition(
                kind=kind,
                at_observation=self.n_observed,
                rolling_coverage=rate,
                threshold=self.threshold,
                timestamp=time.time(),
            )
        )
