"""Serving-layer soak benchmark with a machine-readable JSON report.

Runs :func:`repro.eval.stress.run_serving_campaign` -- the full
registry / hot-swap / admission-control / recalibration stack under
injected artifact corruption, a SIGKILLed scoring worker, and covariate
drift -- against the standard synthetic lot, and writes
``benchmarks/results/BENCH_serving.json`` (see :mod:`repro.perf.bench`
for the schema) with:

* the campaign wall time plus throughput (chips/s) and p50/p99
  per-request latency recorded as timing metadata,
* the audited invariants as named checks: no unverified artifact ever
  served, zero requests dropped across hot-swaps, empirical coverage
  within the campaign tolerance of the promised ``1 - alpha``, at
  least one drift-triggered recalibration and one quarantined version,
  and the service ending the campaign ``READY``.

A second, throughput section times the compiled decision-table kernel
(:mod:`repro.models.tables`) against the per-tree reference loop on the
Table-III-sized holdout batch: best-of-N wall times for both paths,
chips/s plus p50/p99 batch latency for the compiled path, and the
``compiled_batch_predict`` speedup ratio.  Two checks guard the
contract -- the compiled path must be bit-identical to the loop and at
least 5x faster -- and a third confirms the soak itself served through
a compiled kernel.

Wall times and latency figures vary run to run; the checks are the
contract and are asserted.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import BENCH_SEED, RESULTS_DIR, bench_profile_name, publish

from repro.eval.stress import run_serving_campaign
from repro.models import ObliviousBoostingRegressor
from repro.perf.bench import BenchRecorder
from repro.robust import RobustVminFlow

N_TRAIN = 110

# Paper-sized band ensembles for the throughput section (Table III
# setting); deliberately NOT scaled down by the smoke profile.
TABLE_III_ESTIMATORS = 100

REPORT_PATH = RESULTS_DIR / "BENCH_serving.json"


def _campaign_sizes() -> dict:
    """Phase lengths per profile: smoke is CI-sized, fast/full soak longer."""
    if bench_profile_name() == "smoke":
        return dict(
            n_clean_batches=3,
            n_crash_batches=3,
            n_swap_batches=4,
            n_drift_batches=10,
            n_recovery_batches=6,
        )
    return dict(
        n_clean_batches=6,
        n_crash_batches=6,
        n_swap_batches=8,
        n_drift_batches=16,
        n_recovery_batches=10,
    )


def test_serving_soak(dataset, profile, tmp_path):
    X, names = dataset.features(0)
    y = dataset.target(25.0, 0)
    parametric = [i for i, n in enumerate(names) if n.startswith("par_")]
    monitors = [i for i, n in enumerate(names) if not n.startswith("par_")]
    flow = RobustVminFlow(
        base_model=ObliviousBoostingRegressor(
            n_estimators=profile.catboost_estimators,
            quantile=0.5,
            random_state=BENCH_SEED,
        ),
        alpha=0.1,
        random_state=BENCH_SEED,
        monitor_window=40,
        monitor_min_observations=20,
    )
    flow.fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        feature_names=names,
        fallback_columns=parametric,
        monitor_columns=monitors,
    )

    recorder = BenchRecorder(
        benchmark="serving", profile=bench_profile_name(), n_jobs=1
    )
    report = recorder.timed(
        "serving_campaign",
        lambda: run_serving_campaign(
            flow,
            X[N_TRAIN:],
            y[N_TRAIN:],
            tmp_path / "registry",
            batch_size=20,
            seed=BENCH_SEED,
            **_campaign_sizes(),
        ),
    )
    recorder.record(
        "serving_metrics",
        recorder.wall_s("serving_campaign"),
        chips_per_s=report.chips_per_s,
        p50_latency_s=report.p50_latency_s,
        p99_latency_s=report.p99_latency_s,
        coverage=report.coverage,
        target_coverage=report.target_coverage,
        tolerance=report.tolerance,
        n_requests=report.n_requests,
        n_served=report.n_served,
        n_retried=report.n_retried,
        n_recalibrations=report.n_recalibrations,
        n_versions=report.n_versions,
        n_quarantined=report.n_quarantined,
        downgrade_reasons=[reason for reason, _ in report.downgrades],
        final_state=report.final_state,
    )
    recorder.check("never_served_unverified", report.unverified_serves == 0)
    recorder.check("zero_dropped_during_swap", report.dropped_during_swap == 0)
    recorder.check(
        "coverage_within_tolerance",
        report.coverage >= report.target_coverage - report.tolerance,
    )
    recorder.check("recalibrated_under_drift", report.n_recalibrations >= 1)
    recorder.check("corrupt_version_quarantined", report.n_quarantined >= 1)
    recorder.check("ends_ready", report.final_state == "ready")

    # --- compiled-kernel throughput on the Table-III-sized holdout ----
    # The band models are the hot path of interval scoring; each carries
    # a compiled_ decision-table kernel (predict) next to the per-tree
    # reference loop (_predict_loop), so the same objects give an
    # apples-to-apples single-thread comparison.  The pair is fitted at
    # the paper's ensemble size regardless of REPRO_BENCH so the
    # recorded speedup is profile-independent (the smoke soak shrinks
    # its models, which would dilute the ratio).
    lower = ObliviousBoostingRegressor(
        n_estimators=TABLE_III_ESTIMATORS, quantile=0.05, random_state=BENCH_SEED
    ).fit(X[:N_TRAIN], y[:N_TRAIN])
    upper = ObliviousBoostingRegressor(
        n_estimators=TABLE_III_ESTIMATORS, quantile=0.95, random_state=BENCH_SEED
    ).fit(X[:N_TRAIN], y[:N_TRAIN])
    X_holdout = np.ascontiguousarray(X[N_TRAIN:], dtype=np.float64)
    n_chips = int(X_holdout.shape[0])
    repeats = 30 if bench_profile_name() == "smoke" else 100

    loop_result = recorder.timed(
        "batch_predict_loop",
        lambda: (lower._predict_loop(X_holdout), upper._predict_loop(X_holdout)),
        repeats=repeats,
        n_chips=n_chips,
    )
    # Per-call samples (not just best-of-N) so the compiled path gets
    # honest p50/p99 batch-latency percentiles.
    latencies = []
    compiled_result = loop_result
    for _ in range(repeats):
        start = time.perf_counter()
        compiled_result = (lower.predict(X_holdout), upper.predict(X_holdout))
        latencies.append(time.perf_counter() - start)
    best_s = min(latencies)
    recorder.record(
        "batch_predict_compiled",
        best_s,
        repeats=repeats,
        n_chips=n_chips,
        chips_per_s=n_chips / best_s,
        p50_batch_latency_s=float(np.percentile(latencies, 50)),
        p99_batch_latency_s=float(np.percentile(latencies, 99)),
    )
    kernel_speedup = recorder.speedup(
        "compiled_batch_predict", "batch_predict_loop", "batch_predict_compiled"
    )
    parity = np.array_equal(compiled_result[0], loop_result[0]) and np.array_equal(
        compiled_result[1], loop_result[1]
    )
    recorder.check("compiled_parity_bit_identical", parity)
    recorder.check("compiled_speedup_at_least_5x", kernel_speedup >= 5.0)
    recorder.check(
        "served_through_compiled_kernel", len(report.compiled_kernels) >= 1
    )

    path = recorder.write(REPORT_PATH)
    publish("serving_soak", report.to_table())
    print(f"wrote {path}")

    assert report.ok(), report.to_table()
    assert parity, "compiled kernel diverged from the per-tree loop"
    assert kernel_speedup >= 5.0, f"compiled speedup only {kernel_speedup:.2f}x"
    assert len(report.compiled_kernels) >= 1, "soak served without a compiled kernel"
