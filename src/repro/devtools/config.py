"""``[tool.reprolint]`` configuration loading.

Configuration lives in ``pyproject.toml`` next to the code::

    [tool.reprolint]
    disable = ["REP108"]          # rule ids or names switched off
    enable = []                   # when non-empty, ONLY these run
    exclude = ["examples/*"]      # path globs never linted
    test-dirs = ["tests"]         # directory names classified as tests

    [tool.reprolint.perf]         # a named *scope*: extra filtering
    paths = ["src/repro/perf/*"]  # globs the scope applies to
    disable = ["REP102"]          # rules off for matching files only

Nested tables under ``[tool.reprolint]`` are scopes: per-path overlays
that *narrow* the rule set for files matching their ``paths`` globs
(``disable`` switches rules off there; a non-empty ``enable`` keeps only
those rules there).  Scopes never re-enable a rule the base config
disabled, so the global configuration stays the single source of truth
for what can run at all.

One nested table name is *reserved*: ``[tool.reprolint.analysis]``
configures the whole-program analysis pass (``python -m repro
analyze``) instead of declaring a scope::

    [tool.reprolint.analysis]
    disable = ["REP203"]               # analysis rules switched off
    exclude = ["src/repro/legacy/*"]   # paths the deep pass skips
    baseline = "analysis-baseline.json"

TOML parsing uses :mod:`tomllib` (Python >= 3.11) and degrades
gracefully: on older interpreters without ``tomli`` installed the
defaults are used and a note is attached to :attr:`LintConfig.notes`
-- the linter never gains a third-party dependency.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, Optional, Tuple

try:  # Python >= 3.11
    import tomllib as _toml
except ModuleNotFoundError:  # pragma: no cover - exercised only on <3.11
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ModuleNotFoundError:
        _toml = None  # type: ignore[assignment]

__all__ = [
    "AnalysisConfig",
    "LintConfig",
    "ScopeConfig",
    "find_pyproject",
    "load_config",
]

_DEFAULT_TEST_DIRS = ("tests",)


@dataclass(frozen=True)
class AnalysisConfig:
    """Configuration of the whole-program pass (``[tool.reprolint.analysis]``).

    ``enable``/``disable`` filter the REP2xx/REP3xx analysis rules with
    the same enable-beats-disable semantics as the base linter;
    ``exclude`` globs are applied *on top of* the base excludes;
    ``baseline`` names a committed findings file that suppresses known,
    accepted findings so the deep pass can be adopted incrementally.
    """

    disable: FrozenSet[str] = frozenset()
    enable: FrozenSet[str] = frozenset()
    exclude: Tuple[str, ...] = ()
    baseline: Optional[str] = None

    def rule_enabled(self, rule_id: str, rule_name: str) -> bool:
        """Return whether an analysis rule survives the filters."""
        keys = {rule_id, rule_name}
        if self.enable:
            return bool(keys & self.enable)
        return not keys & self.disable


@dataclass(frozen=True)
class ScopeConfig:
    """Per-path rule filtering for one ``[tool.reprolint.<name>]`` table.

    A scope applies to every linted file matching one of its ``paths``
    globs.  Within its paths, ``disable`` switches listed rules off and a
    non-empty ``enable`` keeps *only* the listed rules -- both can only
    narrow the globally enabled set, never resurrect a rule the base
    config disabled.
    """

    name: str
    paths: Tuple[str, ...]
    disable: FrozenSet[str] = frozenset()
    enable: FrozenSet[str] = frozenset()

    def matches(self, path: str) -> bool:
        """Return whether ``path`` falls inside this scope."""
        candidates = (path, Path(path).as_posix())
        return any(
            fnmatch.fnmatch(candidate, pattern)
            for candidate in candidates
            for pattern in self.paths
        )


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter configuration.

    ``enable`` beats ``disable``: when ``enable`` is non-empty only the
    listed rules run, mirroring how focused CI jobs are usually set up.
    Entries may be rule ids (``REP102``) or names
    (``no-float-equality``) interchangeably.
    """

    disable: FrozenSet[str] = frozenset()
    enable: FrozenSet[str] = frozenset()
    exclude: Tuple[str, ...] = ()
    test_dirs: FrozenSet[str] = frozenset(_DEFAULT_TEST_DIRS)
    scopes: Tuple[ScopeConfig, ...] = ()
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    notes: Tuple[str, ...] = ()

    def rule_enabled(self, rule_id: str, rule_name: str) -> bool:
        """Return whether a rule survives the enable/disable filters."""
        keys = {rule_id, rule_name}
        if self.enable:
            return bool(keys & self.enable)
        return not keys & self.disable

    def rule_enabled_for(self, path: str, rule_id: str, rule_name: str) -> bool:
        """Return whether a rule runs on ``path``, scopes included.

        The base enable/disable filters apply everywhere; every scope
        whose ``paths`` match then gets a veto.  Scopes therefore only
        narrow -- a rule the base config disables stays off even inside
        a scope that lists it under ``enable``.
        """
        if not self.rule_enabled(rule_id, rule_name):
            return False
        keys = {rule_id, rule_name}
        for scope in self.scopes:
            if not scope.matches(path):
                continue
            if scope.enable and not keys & scope.enable:
                return False
            if keys & scope.disable:
                return False
        return True

    def is_excluded(self, path: str) -> bool:
        """Return whether ``path`` matches any configured exclude glob."""
        candidates = (path, Path(path).as_posix())
        return any(
            fnmatch.fnmatch(candidate, pattern)
            for candidate in candidates
            for pattern in self.exclude
        )


def find_pyproject(start: Optional[str] = None) -> Optional[Path]:
    """Walk upward from ``start`` (default: cwd) to find pyproject.toml."""
    here = Path(start or ".").resolve()
    if here.is_file():
        here = here.parent
    for directory in (here, *here.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def _as_str_tuple(value: Any, key: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ValueError(f"[tool.reprolint] {key} must be a list of strings")
    return tuple(value)


def load_config(start: Optional[str] = None) -> LintConfig:
    """Load ``[tool.reprolint]`` for the project containing ``start``.

    Missing file, missing section, or an unavailable TOML parser all
    yield the default config; malformed sections raise ``ValueError``
    so CI fails loudly rather than silently linting with defaults.
    """
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    if _toml is None:
        return LintConfig(
            notes=(
                f"{pyproject}: [tool.reprolint] ignored -- no TOML parser "
                "on this interpreter (Python < 3.11 without tomli)",
            )
        )
    with open(pyproject, "rb") as handle:
        data: Dict[str, Any] = _toml.load(handle)
    section = data.get("tool", {}).get("reprolint")
    if section is None:
        return LintConfig()
    if not isinstance(section, dict):
        raise ValueError("[tool.reprolint] must be a table")
    # Nested tables are named scopes ([tool.reprolint.perf] etc.) --
    # except the reserved ``analysis`` table; every other key must come
    # from the known top-level set.
    scope_items = {
        key: value for key, value in section.items() if isinstance(value, dict)
    }
    analysis_table = scope_items.pop("analysis", None)
    if analysis_table is not None and not isinstance(analysis_table, dict):
        raise ValueError("[tool.reprolint.analysis] must be a table")
    known = {"disable", "enable", "exclude", "test-dirs", "analysis"}
    unknown = set(section) - known - set(scope_items)
    if unknown:
        raise ValueError(
            f"[tool.reprolint] has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)} or nested scope tables"
        )
    return LintConfig(
        disable=frozenset(_as_str_tuple(section.get("disable", []), "disable")),
        enable=frozenset(_as_str_tuple(section.get("enable", []), "enable")),
        exclude=_as_str_tuple(section.get("exclude", []), "exclude"),
        test_dirs=frozenset(
            _as_str_tuple(section.get("test-dirs", list(_DEFAULT_TEST_DIRS)), "test-dirs")
        ),
        scopes=tuple(
            _load_scope(name, table) for name, table in sorted(scope_items.items())
        ),
        analysis=_load_analysis(analysis_table, root=pyproject.parent),
    )


def _load_analysis(
    table: Optional[Dict[str, Any]], root: Optional[Path] = None
) -> AnalysisConfig:
    if table is None:
        return AnalysisConfig()
    known = {"disable", "enable", "exclude", "baseline"}
    unknown = set(table) - known
    if unknown:
        raise ValueError(
            f"[tool.reprolint.analysis] has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    baseline = table.get("baseline")
    if baseline is not None and not isinstance(baseline, str):
        raise ValueError("[tool.reprolint.analysis] baseline must be a string")
    # A relative baseline is anchored at the pyproject.toml directory, so
    # the deep pass finds the committed file from any working directory.
    if baseline is not None and root is not None and not Path(baseline).is_absolute():
        baseline = str(root / baseline)
    return AnalysisConfig(
        disable=frozenset(
            _as_str_tuple(table.get("disable", []), "analysis.disable")
        ),
        enable=frozenset(_as_str_tuple(table.get("enable", []), "analysis.enable")),
        exclude=_as_str_tuple(table.get("exclude", []), "analysis.exclude"),
        baseline=baseline,
    )


def _load_scope(name: str, table: Dict[str, Any]) -> ScopeConfig:
    known = {"paths", "disable", "enable"}
    unknown = set(table) - known
    if unknown:
        raise ValueError(
            f"[tool.reprolint.{name}] has unknown keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    paths = _as_str_tuple(table.get("paths", []), f"{name}.paths")
    if not paths:
        raise ValueError(
            f"[tool.reprolint.{name}] must declare a non-empty 'paths' list"
        )
    return ScopeConfig(
        name=name,
        paths=paths,
        disable=frozenset(_as_str_tuple(table.get("disable", []), f"{name}.disable")),
        enable=frozenset(_as_str_tuple(table.get("enable", []), f"{name}.enable")),
    )
