"""Self-check: the shipped tree must be reprolint-clean.

This is the acceptance gate for the whole suite: running every rule
(with the project's ``[tool.reprolint]`` configuration) over ``src``
and ``tests`` yields zero findings, and the CLI agrees via its exit
code.  Any regression that reintroduces a legacy RNG call, a bare
assert in src, a drifting ``__all__`` etc. fails here before it
reaches CI.
"""

from pathlib import Path

from repro.devtools import lint_paths, load_config
from repro.devtools.lint import EXIT_CLEAN, main
from repro.devtools.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parent.parent


def tree_findings():
    config = load_config(str(REPO_ROOT))
    return lint_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], config=config
    )


def test_src_and_tests_are_lint_clean():
    findings = tree_findings()
    assert findings == [], "\n" + render_text(findings, checked_files=0)


def test_cli_exits_clean_on_repo(capsys):
    code = main([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, out
    assert "all clean" in out
