"""Tests for the exact-greedy gradient tree and DecisionTreeRegressor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.tree import DecisionTreeRegressor, GradientTree, TreeGrowthParams


class TestGrowthParams:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_depth": -1},
            {"min_samples_leaf": 0},
            {"min_child_weight": -1.0},
            {"reg_lambda": -0.1},
            {"gamma": -0.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            TreeGrowthParams(**kwargs)


class TestGradientTree:
    def test_single_leaf_is_newton_step(self):
        X = np.zeros((4, 1))
        grads = np.array([1.0, 2.0, 3.0, 4.0])
        hess = np.ones(4)
        tree = GradientTree(TreeGrowthParams(max_depth=0, reg_lambda=0.0))
        tree.fit_gradients(X, grads, hess)
        np.testing.assert_allclose(tree.predict(X), -grads.sum() / 4.0)

    def test_perfect_step_split(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        grads = np.array([-1.0, -1.0, 1.0, 1.0])
        tree = GradientTree(TreeGrowthParams(max_depth=1, reg_lambda=0.0))
        tree.fit_gradients(X, grads, np.ones(4))
        prediction = tree.predict(X)
        np.testing.assert_allclose(prediction, [1.0, 1.0, -1.0, -1.0])

    def test_min_samples_leaf_respected(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        grads = np.array([-1.0] + [1.0] * 9)  # best unrestricted split isolates one point
        tree = GradientTree(
            TreeGrowthParams(max_depth=3, min_samples_leaf=3, reg_lambda=0.0)
        )
        tree.fit_gradients(X, grads, np.ones(10))
        # Every leaf must contain >= 3 training samples.
        leaf_of = np.array(
            [np.flatnonzero(tree.predict(X[i : i + 1]) == tree.value_)[0] for i in range(10)]
        )
        _, counts = np.unique(leaf_of, return_counts=True)
        assert counts.min() >= 3

    def test_gamma_prunes_weak_splits(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 2))
        grads = rng.normal(scale=0.01, size=50)  # almost no structure
        strict = GradientTree(TreeGrowthParams(max_depth=4, gamma=100.0))
        strict.fit_gradients(X, grads, np.ones(50))
        assert strict.n_leaves == 1

    def test_feature_restriction(self):
        X = np.column_stack([np.arange(8.0), np.zeros(8)])
        grads = np.array([-1.0] * 4 + [1.0] * 4)
        tree = GradientTree(TreeGrowthParams(max_depth=2, reg_lambda=0.0))
        tree.fit_gradients(X, grads, np.ones(8), feature_indices=np.array([1]))
        assert tree.n_leaves == 1  # feature 1 is constant: nothing to split

    def test_importances_count_splits(self):
        X = np.column_stack([np.arange(16.0), np.zeros(16)])
        grads = np.sign(np.arange(16) - 7.5)
        tree = GradientTree(TreeGrowthParams(max_depth=2, reg_lambda=0.0))
        tree.fit_gradients(X, grads, np.ones(16))
        importances = tree.feature_importances(2)
        assert importances[0] > 0 and importances[1] == 0

    def test_rejects_bad_shapes(self):
        tree = GradientTree()
        with pytest.raises(ValueError):
            tree.fit_gradients(np.zeros((3, 1)), np.zeros(2), np.zeros(3))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            GradientTree().predict(np.zeros((2, 2)))

    def test_predict_validates_feature_width(self):
        """The raw tree rejects mismatched X width with a clear error:
        extra columns used to score silently and missing columns died
        with a bare IndexError mid-walk."""
        X = np.column_stack([np.arange(8.0), np.zeros(8)])
        grads = np.array([-1.0] * 4 + [1.0] * 4)
        tree = GradientTree(TreeGrowthParams(max_depth=2, reg_lambda=0.0))
        tree.fit_gradients(X, grads, np.ones(8))
        assert tree.n_features_in_ == 2
        with pytest.raises(ValueError, match="5 features.*fitted with 2"):
            tree.predict(np.zeros((3, 5)))
        with pytest.raises(ValueError, match="1 features.*fitted with 2"):
            tree.predict(np.zeros((3, 1)))
        with pytest.raises(ValueError, match="2-D"):
            tree.predict(np.zeros(2))

    def test_predict_without_recorded_width_still_scores(self):
        """Trees unpickled from pre-width bundles lack n_features_in_
        and must keep predicting rather than refuse."""
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        grads = np.array([-1.0, -1.0, 1.0, 1.0])
        tree = GradientTree(TreeGrowthParams(max_depth=1, reg_lambda=0.0))
        tree.fit_gradients(X, grads, np.ones(4))
        reference = tree.predict(X)
        del tree.n_features_in_
        np.testing.assert_array_equal(tree.predict(X), reference)


class TestDecisionTreeRegressor:
    def test_leaves_predict_leaf_means(self, rng):
        """CART invariant: training prediction equals the mean of the
        targets sharing the same leaf."""
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        model = DecisionTreeRegressor(max_depth=3, min_samples_leaf=5).fit(X, y)
        prediction = model.predict(X)
        for value in np.unique(prediction):
            members = prediction == value
            assert np.mean(y[members]) == pytest.approx(value, abs=1e-10)

    def test_fits_piecewise_constant_exactly(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.where(X[:, 0] < 10, -1.0, 2.0)
        model = DecisionTreeRegressor(max_depth=2).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y)

    def test_deeper_fits_training_better(self, rng):
        X = rng.normal(size=(100, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        shallow = DecisionTreeRegressor(max_depth=1).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y)

    def test_importances_normalised(self, rng):
        X = rng.normal(size=(60, 4))
        y = X[:, 2] * 3.0
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        importances = model.feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        assert importances.argmax() == 2

    @given(seed=st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_partition_consistency(self, seed):
        """Every training point predicts exactly one of the leaf values."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(30, 2))
        y = rng.normal(size=30)
        model = DecisionTreeRegressor(max_depth=3).fit(X, y)
        prediction = model.predict(X)
        assert np.isin(prediction, model.tree_.value_).all()

    def test_predict_wrong_width(self, rng):
        X = rng.normal(size=(30, 2))
        model = DecisionTreeRegressor().fit(X, rng.normal(size=30))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, 5)))
