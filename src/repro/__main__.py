"""Command-line interface: ``python -m repro <command>``.

Three commands cover the non-programmatic workflows:

* ``generate`` -- create a synthetic lot and save its measurements to a
  ``.npz`` (optionally also the burn-in flow log as CSV),
* ``predict`` -- fit the recommended CQR pipeline on a saved (or fresh)
  lot and print calibrated intervals for held-out chips,
* ``info`` -- describe a saved lot (shapes, read points, corners).

The CLI exists so a test-floor engineer can produce and inspect data
without writing Python; everything it does is a thin shim over the
public API.
"""

from __future__ import annotations

import argparse
import sys
import zipfile
from typing import List, Optional

import numpy as np

from repro import SiliconDataset, VminPredictionFlow
from repro.models import ObliviousBoostingRegressor
from repro.silicon.io import export_flow_csv, load_measurements, save_measurements

__all__ = ["build_parser", "main"]


def _chip_count(text: str) -> int:
    """argparse type for ``--chips``: an integer >= 2."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"--chips must be >= 2 (a lot needs at least two chips), got {value}"
        )
    return value


def _seed_value(text: str) -> int:
    """argparse type for ``--seed``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid integer value: {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--seed must be a non-negative integer, got {value}"
        )
    return value


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = SiliconDataset.generate(n_chips=args.chips, seed=args.seed)
    path = save_measurements(dataset, args.output)
    print(dataset.summary())
    print(f"measurements written to {path}")
    if args.flow_csv:
        rows = export_flow_csv(dataset, args.flow_csv)
        print(f"flow log ({rows} records) written to {args.flow_csv}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    dataset = load_measurements(args.dataset)
    print(f"chips        : {dataset.n_chips}")
    print(f"parametric   : {dataset.parametric.shape[1]} channels")
    print(f"ROD monitors : {len(dataset.rod_names)}")
    print(f"CPD monitors : {len(dataset.cpd_names)}")
    print(f"read points  : {list(dataset.read_points)} h")
    print(f"temperatures : {[f'{t:g}C' for t in dataset.temperatures]}")
    for hours in dataset.read_points:
        for temperature in dataset.temperatures:
            vmin = dataset.vmin[(temperature, hours)]
            print(
                f"  Vmin @ {temperature:>6g}C, {hours:>5d}h: "
                f"median {np.median(vmin)*1e3:6.1f} mV, "
                f"max {vmin.max()*1e3:6.1f} mV"
            )
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if args.dataset:
        dataset = load_measurements(args.dataset)
    else:
        dataset = SiliconDataset.generate(seed=args.seed)
    if args.hours not in dataset.read_points:
        print(
            f"error: read point {args.hours} h not in {list(dataset.read_points)}",
            file=sys.stderr,
        )
        return 2
    X, names = dataset.features(args.hours)
    try:
        y = dataset.target(args.temperature, args.hours)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    n_train = int(round(dataset.n_chips * (1.0 - args.holdout)))
    if not 2 <= n_train < dataset.n_chips:
        print("error: holdout leaves no usable train/test split", file=sys.stderr)
        return 2

    base = ObliviousBoostingRegressor(
        n_estimators=args.trees, quantile=0.5, random_state=args.seed
    )
    flow = VminPredictionFlow(base_model=base, alpha=args.alpha, random_state=args.seed)
    flow.fit(X[:n_train], y[:n_train], feature_names=names)
    try:
        intervals = flow.predict_interval(X[n_train:])
    except RuntimeError as error:
        # Typically: too few calibration chips for the requested alpha.
        print(f"error: {error}", file=sys.stderr)
        return 2

    print(
        f"CQR intervals @ {args.temperature:g}C, {args.hours}h "
        f"(alpha={args.alpha:g}, guarantee >= {flow.guaranteed_coverage_:.1%})"
    )
    print(
        f"held-out coverage {intervals.coverage(y[n_train:]):.1%}, "
        f"mean width {intervals.mean_width*1e3:.1f} mV"
    )
    for i in range(len(intervals)):
        print(
            f"chip {n_train + i:4d}: "
            f"[{intervals.lower[i]*1e3:7.1f}, {intervals.upper[i]*1e3:7.1f}] mV"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the three-command argument parser (generate/info/predict)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Vmin interval prediction toolkit (DATE 2024 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic lot and save its measurements"
    )
    generate.add_argument("output", help="output .npz path")
    generate.add_argument("--chips", type=_chip_count, default=156)
    generate.add_argument("--seed", type=_seed_value, default=0)
    generate.add_argument(
        "--flow-csv", default=None, help="also export the burn-in flow log CSV"
    )
    generate.set_defaults(handler=_cmd_generate)

    info = commands.add_parser("info", help="describe a saved lot")
    info.add_argument("dataset", help=".npz from 'generate'")
    info.set_defaults(handler=_cmd_info)

    predict = commands.add_parser(
        "predict", help="fit the CQR pipeline and print intervals"
    )
    predict.add_argument(
        "--dataset", default=None, help=".npz lot (default: generate fresh)"
    )
    predict.add_argument("--temperature", type=float, default=25.0)
    predict.add_argument("--hours", type=int, default=0)
    predict.add_argument("--alpha", type=float, default=0.1)
    predict.add_argument("--holdout", type=float, default=0.25)
    predict.add_argument("--trees", type=int, default=100)
    predict.add_argument("--seed", type=_seed_value, default=0)
    predict.set_defaults(handler=_cmd_predict)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the CLI; returns the process exit code (0 ok, 2 user error).

    Argument errors (argparse's exit code 2) and predictable runtime
    failures -- a dataset path that does not exist, a file that is not a
    lot archive, an invalid parameter that slipped past argparse -- are
    reported as one ``error:`` line on stderr, never a traceback.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exit_request:  # argparse already printed the message
        code = exit_request.code
        return code if isinstance(code, int) else 2
    try:
        return args.handler(args)
    except (ValueError, OSError, zipfile.BadZipFile) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
