"""Evaluation: metrics, cross-validation, and the experiment registry.

Implements the paper's protocol (Section IV-B): 4-fold cross-validation
with a shared seed across all methods, :math:`R^2`/RMSE for point
prediction, and average interval length / empirical coverage for region
prediction.  :mod:`repro.eval.experiments` encodes each table and figure
of the paper as a declarative experiment the benchmark harness runs, and
:mod:`repro.eval.stress` measures coverage/length degradation under the
fault campaigns of :mod:`repro.robust`.

The grid runners (:func:`run_point_grid`, :func:`run_region_grid`) are
resilient: they checkpoint completed cells to a
:class:`~repro.runtime.checkpoint.RunJournal`, retry transient worker
faults deterministically, bound each cell with a watchdog timeout, and
can capture failures as structured :class:`FailureRecord` entries
instead of aborting -- see ``docs/RUNTIME.md``.
:func:`run_execution_campaign` stress-tests exactly that machinery by
crashing and hanging workers mid-grid, and
:func:`run_serving_campaign` soaks the full :mod:`repro.serve` stack
(registry, hot-swap, admission control, recalibration) under injected
artifact corruption, SIGKILLed workers, and covariate drift.
:func:`run_shift_campaign` drives the shift defense layer
(:mod:`repro.shift` sentinels, weighted conformal repair, per-zone
monitors) through a multi-fab fleet: a new-fab process corner, a
calendar-time corner drift, and a sensor re-referencing -- see
``docs/SHIFT.md``.
"""

from repro.eval.diagnostics import (
    CoverageReport,
    calibration_curve,
    coverage_by_group,
    width_quantiles,
)
from repro.eval.crossval import (
    IntervalCVResult,
    KFold,
    PointCVResult,
    cross_validate_intervals,
    cross_validate_point,
)
from repro.eval.metrics import (
    coverage_width_criterion,
    empirical_coverage,
    mean_interval_width,
    pinball_score,
    r2_score,
    rmse,
)
from repro.eval.experiments import (
    POINT_MODEL_NAMES,
    REGION_METHOD_NAMES,
    ExperimentProfile,
    FailureRecord,
    FeatureSet,
    GridResult,
    run_point_experiment,
    run_point_grid,
    run_region_experiment,
    run_region_grid,
)
from repro.eval.reporting import format_series, format_table, write_report
from repro.eval.stress import (
    ExecutionStressReport,
    ExecutionStressResult,
    ServingStressReport,
    ShiftPhaseResult,
    ShiftStressReport,
    StressReport,
    StressResult,
    run_execution_campaign,
    run_fault_campaign,
    run_serving_campaign,
    run_shift_campaign,
)

__all__ = [
    "CoverageReport",
    "ExecutionStressReport",
    "ExecutionStressResult",
    "ExperimentProfile",
    "FailureRecord",
    "FeatureSet",
    "GridResult",
    "IntervalCVResult",
    "KFold",
    "POINT_MODEL_NAMES",
    "PointCVResult",
    "REGION_METHOD_NAMES",
    "ServingStressReport",
    "ShiftPhaseResult",
    "ShiftStressReport",
    "StressReport",
    "StressResult",
    "coverage_width_criterion",
    "cross_validate_intervals",
    "cross_validate_point",
    "empirical_coverage",
    "calibration_curve",
    "coverage_by_group",
    "format_series",
    "format_table",
    "width_quantiles",
    "mean_interval_width",
    "pinball_score",
    "r2_score",
    "rmse",
    "run_execution_campaign",
    "run_fault_campaign",
    "run_point_experiment",
    "run_point_grid",
    "run_region_experiment",
    "run_region_grid",
    "run_serving_campaign",
    "run_shift_campaign",
    "write_report",
]
