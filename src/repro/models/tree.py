"""Regression trees fitted to per-sample gradients and Hessians.

This is the shared tree machinery underneath both boosting models:

* :class:`GradientTree` grows a depth-wise binary tree by exact greedy
  search maximising the XGBoost split gain

  .. math::

      \\mathrm{gain} = \\tfrac12\\Big[\\frac{G_L^2}{H_L+\\lambda}
          + \\frac{G_R^2}{H_R+\\lambda}
          - \\frac{(G_L+G_R)^2}{H_L+H_R+\\lambda}\\Big] - \\gamma,

  with Newton-optimal leaf values :math:`w = -G/(H+\\lambda)`.

* :class:`DecisionTreeRegressor` is the stand-alone estimator: fitting a
  single gradient tree to the squared loss from a zero base score makes
  every leaf value the mean of its targets, i.e. an ordinary CART
  regression tree.

Trees are stored as flat parallel arrays (feature, threshold, children,
value) so prediction is an iterative descent without Python recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import BaseRegressor, check_fitted, check_X, check_X_y

__all__ = ["DecisionTreeRegressor", "GradientTree", "TreeGrowthParams"]

_LEAF = -1


@dataclass
class TreeGrowthParams:
    """Growth limits and regularisation for :class:`GradientTree`.

    Attributes
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum number of samples on each side of a split.
    min_child_weight:
        Minimum Hessian sum on each side of a split (XGBoost semantics;
        with unit Hessians this equals a sample count).
    reg_lambda:
        L2 regularisation on leaf values (XGBoost ``lambda``).
    gamma:
        Minimum gain required to keep a split (XGBoost ``gamma``).
    """

    max_depth: int = 6
    min_samples_leaf: int = 1
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.min_child_weight < 0:
            raise ValueError(
                f"min_child_weight must be >= 0, got {self.min_child_weight}"
            )
        if self.reg_lambda < 0:
            raise ValueError(f"reg_lambda must be >= 0, got {self.reg_lambda}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")


@dataclass
class _NodeBuffers:
    """Flat array representation filled while growing (internal)."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[float] = field(default_factory=list)

    def new_node(self) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(0.0)
        return len(self.feature) - 1


def _best_split_for_feature(
    values: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    params: TreeGrowthParams,
) -> Tuple[float, float]:
    """Return (gain, threshold) of the best split on one feature column.

    Vectorised exact greedy: sort by feature value, take prefix sums of
    gradients/Hessians, and evaluate the gain at every boundary between
    distinct values.  Returns ``(-inf, nan)`` when no admissible split
    exists.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    grad_prefix = np.cumsum(gradients[order])
    hess_prefix = np.cumsum(hessians[order])
    total_grad = grad_prefix[-1]
    total_hess = hess_prefix[-1]
    n = values.shape[0]

    # Candidate split after position i keeps samples [0..i] on the left.
    positions = np.arange(n - 1)
    distinct = sorted_values[positions] < sorted_values[positions + 1]
    left_count = positions + 1
    right_count = n - left_count
    admissible = (
        distinct
        & (left_count >= params.min_samples_leaf)
        & (right_count >= params.min_samples_leaf)
    )
    if not np.any(admissible):
        return -np.inf, float("nan")

    g_left = grad_prefix[positions]
    h_left = hess_prefix[positions]
    g_right = total_grad - g_left
    h_right = total_hess - h_left
    admissible &= (h_left >= params.min_child_weight) & (
        h_right >= params.min_child_weight
    )
    if not np.any(admissible):
        return -np.inf, float("nan")

    lam = params.reg_lambda
    gain = 0.5 * (
        g_left**2 / (h_left + lam)
        + g_right**2 / (h_right + lam)
        - total_grad**2 / (total_hess + lam)
    )
    gain = np.where(admissible, gain, -np.inf)
    best = int(np.argmax(gain))
    threshold = 0.5 * (sorted_values[best] + sorted_values[best + 1])
    return float(gain[best]), threshold


class GradientTree:
    """A single Newton-boosting tree over (gradient, Hessian) statistics."""

    def __init__(self, params: Optional[TreeGrowthParams] = None) -> None:
        self.params = params or TreeGrowthParams()
        self.feature_: Optional[np.ndarray] = None
        self.threshold_: Optional[np.ndarray] = None
        self.left_: Optional[np.ndarray] = None
        self.right_: Optional[np.ndarray] = None
        self.value_: Optional[np.ndarray] = None

    # -- growing ----------------------------------------------------------
    def fit_gradients(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: Optional[np.ndarray] = None,
    ) -> "GradientTree":
        """Grow the tree on ``X`` against per-sample gradients/Hessians.

        ``feature_indices`` restricts split search to a column subset
        (used by the boosting layer's ``colsample`` option); leaf values
        are always Newton steps :math:`-G/(H+\\lambda)`.
        """
        X = np.asarray(X, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if gradients.shape != (X.shape[0],) or hessians.shape != (X.shape[0],):
            raise ValueError("gradients/hessians must be 1-D with len(X) entries")
        if feature_indices is None:
            feature_indices = np.arange(X.shape[1])

        buffers = _NodeBuffers()
        root = buffers.new_node()
        # Work stack of (node_id, row_indices, depth); iterative to avoid
        # recursion limits on deep trees.
        stack = [(root, np.arange(X.shape[0]), 0)]
        lam = self.params.reg_lambda
        while stack:
            node_id, rows, depth = stack.pop()
            grad_sum = float(gradients[rows].sum())
            hess_sum = float(hessians[rows].sum())
            buffers.value[node_id] = -grad_sum / (hess_sum + lam)

            if depth >= self.params.max_depth or rows.size < 2 * self.params.min_samples_leaf:
                continue

            best_gain = -np.inf
            best_feature = _LEAF
            best_threshold = float("nan")
            for feature in feature_indices:
                gain, threshold = _best_split_for_feature(
                    X[rows, feature], gradients[rows], hessians[rows], self.params
                )
                if gain > best_gain:
                    best_gain = gain
                    best_feature = int(feature)
                    best_threshold = threshold
            if best_feature == _LEAF or best_gain <= self.params.gamma:
                continue

            goes_left = X[rows, best_feature] <= best_threshold
            left_id = buffers.new_node()
            right_id = buffers.new_node()
            buffers.feature[node_id] = best_feature
            buffers.threshold[node_id] = best_threshold
            buffers.left[node_id] = left_id
            buffers.right[node_id] = right_id
            stack.append((left_id, rows[goes_left], depth + 1))
            stack.append((right_id, rows[~goes_left], depth + 1))

        self.feature_ = np.asarray(buffers.feature, dtype=np.int64)
        self.threshold_ = np.asarray(buffers.threshold, dtype=np.float64)
        self.left_ = np.asarray(buffers.left, dtype=np.int64)
        self.right_ = np.asarray(buffers.right, dtype=np.int64)
        self.value_ = np.asarray(buffers.value, dtype=np.float64)
        return self

    # -- prediction --------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf value for every row of ``X``."""
        if self.feature_ is None:
            raise RuntimeError("GradientTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[node_ids] != _LEAF
        while np.any(active):
            current = node_ids[active]
            feature = self.feature_[current]
            threshold = self.threshold_[current]
            rows = np.flatnonzero(active)
            goes_left = X[rows, feature] <= threshold
            node_ids[rows[goes_left]] = self.left_[current[goes_left]]
            node_ids[rows[~goes_left]] = self.right_[current[~goes_left]]
            active = self.feature_[node_ids] != _LEAF
        return self.value_[node_ids]

    @property
    def n_nodes(self) -> int:
        return 0 if self.feature_ is None else int(self.feature_.size)

    @property
    def n_leaves(self) -> int:
        if self.feature_ is None:
            return 0
        return int(np.sum(self.feature_ == _LEAF))

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split counts per feature (unnormalised)."""
        counts = np.zeros(n_features)
        if self.feature_ is not None:
            for feature in self.feature_:
                if feature != _LEAF:
                    counts[feature] += 1.0
        return counts


class DecisionTreeRegressor(BaseRegressor):
    """CART-style regression tree minimising squared error.

    Implemented as a single :class:`GradientTree` on squared-loss statistics
    (gradient ``−y``, Hessian ``1`` from a zero base score) with
    ``reg_lambda = 0``, which makes each leaf predict the mean target of its
    samples -- exactly CART with variance-reduction splits.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        min_gain: float = 0.0,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.tree_: Optional[GradientTree] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        params = TreeGrowthParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_child_weight=0.0,
            reg_lambda=0.0,
            gamma=self.min_gain,
        )
        tree = GradientTree(params)
        tree.fit_gradients(X, -y, np.ones_like(y))
        self.tree_ = tree
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return self.tree_.predict(X)

    @property
    def feature_importances_(self) -> np.ndarray:
        check_fitted(self, "tree_")
        counts = self.tree_.feature_importances(self.n_features_in_)
        total = counts.sum()
        return counts / total if total > 0 else counts
