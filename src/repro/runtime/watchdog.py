"""Task deadlines and a stuck-task watchdog for the execution runtime.

A hung model fit (a pathological LP, a runaway optimiser) must not hang
the whole experiment grid.  Two mechanisms, matched to the two
:func:`repro.perf.parallel.parallel_map` backends:

* **Cooperative deadlines** (thread backend and serial execution).
  :func:`deadline_scope` installs a per-task deadline on a thread-local
  stack; instrumented code calls :func:`check_deadline` at convenient
  points and gets a :class:`TaskTimeout` -- a
  :class:`~repro.runtime.retry.TransientFault` -- once the budget is
  spent.  Threads cannot be killed, so this is the honest contract: a
  task that never checks is never interrupted.
* **Hard kill** (process backend).  :func:`run_in_subprocess` executes
  one task in a dedicated child process with a wall-clock cap: on
  overrun the child is killed and :class:`TaskTimeout` raised; a child
  that dies without reporting (segfault, ``os._exit``) surfaces as
  :class:`WorkerCrash`.  ``parallel_map`` uses this to requeue tasks
  serially after killing a stuck pool, so a hung worker degrades the
  grid to serial re-execution instead of aborting it.

Both timeout exceptions are transient faults, so a
:class:`~repro.runtime.retry.RetryPolicy` re-runs them by default.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from typing import Any, Callable, Iterator, List, Optional, TypeVar

from contextlib import contextmanager

from repro.runtime.retry import TransientFault

__all__ = [
    "Deadline",
    "TaskTimeout",
    "WorkerCrash",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "remaining_time",
    "run_in_subprocess",
    "run_with_deadline",
]

T = TypeVar("T")
R = TypeVar("R")


class TaskTimeout(TransientFault):
    """A task exceeded its time budget (cooperative or hard-killed).

    Transient by taxonomy: a timeout on a loaded machine often succeeds
    on retry; a deterministic hang exhausts the policy and surfaces as a
    captured failure instead of wedging the grid.
    """


class WorkerCrash(TransientFault):
    """A worker process died without reporting a result.

    Raised when a subprocess exits abnormally (killed, segfault,
    ``os._exit``) -- the infrastructure failed, not necessarily the
    task, so the fault is transient and retryable.
    """


class Deadline:
    """A wall-clock budget measured with :func:`time.monotonic`.

    Immutable once created; :meth:`check` raises :class:`TaskTimeout`
    when the budget is spent.
    """

    __slots__ = ("seconds", "_expires_at")

    def __init__(self, seconds: float) -> None:
        if not seconds > 0.0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        self.seconds = float(seconds)
        self._expires_at = time.monotonic() + self.seconds

    def remaining(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self._expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        """Whether the budget is already spent."""
        return self.remaining() <= 0.0

    def check(self) -> None:
        """Raise :class:`TaskTimeout` when the deadline has passed."""
        if self.expired:
            raise TaskTimeout(
                f"task exceeded its {self.seconds:g}s deadline"
            )

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds:g}, remaining={self.remaining():.3f})"


_SCOPES = threading.local()


def _stack() -> List[Deadline]:
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = []
        _SCOPES.stack = stack
    return stack


@contextmanager
def deadline_scope(seconds: Optional[float]) -> Iterator[Optional[Deadline]]:
    """Install a cooperative deadline for the duration of the block.

    ``seconds=None`` is a no-op scope (no deadline), so call sites can
    pass an optional timeout straight through.  Scopes nest: an inner
    scope does not hide an outer one -- :func:`check_deadline` honours
    every active deadline on the stack.
    """
    if seconds is None:
        yield None
        return
    deadline = Deadline(seconds)
    stack = _stack()
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()


def current_deadline() -> Optional[Deadline]:
    """The innermost active deadline of this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def remaining_time() -> Optional[float]:
    """Tightest remaining budget across active deadlines, or ``None``."""
    stack = _stack()
    if not stack:
        return None
    return min(deadline.remaining() for deadline in stack)


def check_deadline() -> None:
    """Raise :class:`TaskTimeout` if any active deadline has passed.

    The single call instrumented code sprinkles into its loops; free
    when no deadline scope is active.
    """
    for deadline in _stack():
        deadline.check()


def run_with_deadline(fn: Callable[[], R], seconds: Optional[float]) -> R:
    """Run ``fn()`` inside a :func:`deadline_scope` of ``seconds``."""
    with deadline_scope(seconds):
        return fn()


def _subprocess_entry(connection: Any, fn: Callable[..., Any], item: Any, seconds: Optional[float]) -> None:
    """Child-process body: run one task, ship (ok, payload) back."""
    try:
        with deadline_scope(seconds):
            value = fn(item)
        payload = (True, value)
    except BaseException as error:  # noqa: BLE001 - shipped to the parent
        payload = (False, error)
    try:
        connection.send(payload)
    except Exception:
        # Unpicklable value/exception: report the failure by repr so the
        # parent still gets a structured error instead of a dead pipe.
        connection.send(
            (False, WorkerCrash(f"task result could not be pickled: {payload[1]!r}"))
        )
    finally:
        connection.close()


def run_in_subprocess(
    fn: Callable[[T], R],
    item: T,
    timeout: Optional[float] = None,
) -> R:
    """Run ``fn(item)`` in a dedicated child process with a hard kill.

    The one isolation primitive of the runtime: the child also gets a
    cooperative deadline (belt and braces), but the parent enforces the
    wall-clock cap with ``join(timeout)`` + ``kill()`` -- a hung child
    cannot hang the caller.  ``fn``, ``item`` and the result must be
    picklable.  Raises :class:`TaskTimeout` on overrun,
    :class:`WorkerCrash` when the child dies silently, and re-raises the
    child's own exception otherwise.
    """
    context = multiprocessing.get_context()
    receiver, sender = context.Pipe(duplex=False)
    process = context.Process(
        target=_subprocess_entry, args=(sender, fn, item, timeout)
    )
    process.start()
    sender.close()
    try:
        process.join(timeout)
        if process.is_alive():
            process.kill()
            process.join()
            raise TaskTimeout(
                f"subprocess task exceeded its {timeout:g}s deadline and was killed"
            )
        if not receiver.poll():
            raise WorkerCrash(
                f"worker process died without a result (exit code {process.exitcode})"
            )
        try:
            ok, payload = receiver.recv()
        except (EOFError, OSError) as error:
            raise WorkerCrash(
                f"worker result pipe broke (exit code {process.exitcode}): {error}"
            ) from error
    finally:
        receiver.close()
        if process.is_alive():  # pragma: no cover - defensive cleanup
            process.kill()
            process.join()
    if ok:
        return payload
    raise payload
