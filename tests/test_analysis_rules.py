"""Rule-pack tests: every seeded fixture violation is caught, and the
clean near-miss fixtures stay clean (false positives become tests)."""

import textwrap
from pathlib import Path

import pytest

from repro.devtools.analysis import analyze_paths
from repro.devtools.analysis.engine import AnalysisEngine
from repro.devtools.config import LintConfig

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def _findings(*paths, rules=None):
    result = analyze_paths([str(p) for p in paths], rules=rules)
    assert not result.errors
    return result.diagnostics


def _by_rule(diagnostics):
    grouped = {}
    for diagnostic in diagnostics:
        grouped.setdefault(diagnostic.rule_id, []).append(diagnostic)
    return grouped


@pytest.fixture(scope="module")
def fixture_findings():
    return _findings(FIXTURES)


class TestSeededFixtures:
    def test_every_rule_fires_on_its_fixture(self, fixture_findings):
        fired = {d.rule_id for d in fixture_findings}
        assert fired == {
            "REP201",
            "REP202",
            "REP203",
            "REP204",
            "REP301",
            "REP302",
        }

    def test_clean_package_stays_clean(self, fixture_findings):
        clean = [d for d in fixture_findings if "cleanpkg" in d.path]
        assert clean == []

    def test_rep201_closure_captures(self, fixture_findings):
        hits = _by_rule(fixture_findings)["REP201"]
        assert all("tasks.py" in d.path for d in hits)
        names = {d.message.split("'")[1] for d in hits}
        assert names == {"results", "counts", "seen"}

    def test_rep202_rng_variants(self, fixture_findings):
        hits = _by_rule(fixture_findings)["REP202"]
        assert all("rng.py" in d.path for d in hits)
        messages = " | ".join(d.message for d in hits)
        assert "unseeded default_rng()" in messages
        assert "module-level generator 'SHARED_RNG'" in messages
        assert "random.random()" in messages
        assert "numpy.random.normal()" in messages

    def test_rep203_ordering_variants(self, fixture_findings):
        hits = _by_rule(fixture_findings)["REP203"]
        assert all("ordering.py" in d.path for d in hits)
        assert len(hits) == 4  # loop, join, list(), comprehension

    def test_rep204_clock_flows(self, fixture_findings):
        hits = _by_rule(fixture_findings)["REP204"]
        assert all("clock.py" in d.path for d in hits)
        messages = " | ".join(d.message for d in hits)
        assert "time.time" in messages
        assert "os.urandom" in messages
        # The one-call-away flow is attributed through the helper.
        assert "via racepkg.clock._digest_cell" in messages

    def test_rep301_cross_module_leak(self, fixture_findings):
        """The acceptance-criterion fixture: calibration data reaching
        fit() across a module boundary is caught and attributed."""
        hits = _by_rule(fixture_findings)["REP301"]
        assert all("pipeline.py" in d.path for d in hits)
        messages = " | ".join(d.message for d in hits)
        assert "via leakpkg.training.train_model" in messages
        assert "via leakpkg.training.run_training" in messages
        # Plus the direct, seam-tainted leak inside the same function.
        assert any("via" not in d.message for d in hits)

    def test_rep302_refit_variants(self, fixture_findings):
        hits = _by_rule(fixture_findings)["REP302"]
        assert all("refit.py" in d.path for d in hits)
        assert len(hits) == 2  # calibrate() and manual-scores variants


def _analyze_source(source, path="snippet.py", name="snippet"):
    engine = AnalysisEngine(config=LintConfig())
    from repro.devtools.analysis.project import Project
    from repro.devtools.analysis.rules.base import ProjectContext

    project = Project()
    project.add_source(textwrap.dedent(source), path, name=name)
    context = ProjectContext(project)
    findings = []
    for rule in engine.rules:
        findings.extend(rule.check(context))
    return findings


class TestRulePrecision:
    """Near-misses distilled from real src/repro patterns; each of these
    was a candidate false positive during development."""

    def test_thread_safe_journal_record_not_flagged(self):
        # repro.eval.experiments._run_grid records through an RLock'd
        # journal from task bodies; method calls on non-container
        # captures are deliberately out of REP201's scope.
        findings = _analyze_source(
            """
            def run(journal, items, parallel_map):
                def fn(item):
                    value = item * 2
                    journal.record(str(item), {"v": value})
                    return value
                return parallel_map(fn, items)
            """
        )
        assert findings == []

    def test_seeded_generator_param_not_flagged(self):
        # check_random_state-style seeding: default_rng(seed) has args.
        findings = _analyze_source(
            """
            import numpy as np

            def run(seed, items, parallel_map):
                def fn(index):
                    rng = np.random.default_rng((seed, index))
                    return rng.normal()
                return parallel_map(fn, items)
            """
        )
        assert findings == []

    def test_cqr_fit_on_train_rows_not_flagged(self):
        # The shape of repro.core.cqr: calibration rows feed cqr_score
        # and calibrate-like stats, train rows feed fit.
        findings = _analyze_source(
            """
            def fit(band, X, y, split_train_calibration, rng, cqr_score):
                train_idx, cal_idx = split_train_calibration(len(y), 0.25, rng)
                band.fit(X[train_idx], y[train_idx])
                y_cal = y[cal_idx]
                lower, upper = band.predict_band(X[cal_idx])
                scores = cqr_score(y_cal, lower, upper)
                return scores
            """
        )
        assert findings == []

    def test_refit_followed_by_recalibrate_not_flagged(self):
        findings = _analyze_source(
            """
            def update(model, X, y):
                model.calibrate(X, y)
                model.fit(X, y)
                model.calibrate(X, y)
                return model
            """
        )
        assert findings == []

    def test_sorted_set_iteration_not_flagged(self):
        findings = _analyze_source(
            """
            def names(records):
                unique = {r.name for r in records}
                out = []
                for name in sorted(unique):
                    out.append(name)
                return out, len(unique), ", ".join(sorted(unique))
            """
        )
        assert findings == []

    def test_timing_around_fingerprint_not_flagged(self):
        findings = _analyze_source(
            """
            import time

            def timed(fingerprint, config):
                start = time.perf_counter()
                key = fingerprint(config)
                elapsed = time.perf_counter() - start
                return key, elapsed
            """
        )
        assert findings == []

    def test_scores_from_fitted_not_flagged(self):
        # repro.models.adaptive.from_fitted consumes calibration scores
        # without refitting -- consuming scores is not a sink.
        findings = _analyze_source(
            """
            def promote(band, primary, from_fitted):
                scores = primary.cqr_.calibration_scores_
                return from_fitted(band, scores)
            """
        )
        assert findings == []


class TestRuleUnits:
    def test_rep301_annotation_source(self):
        findings = _analyze_source(
            """
            def train(model, holdout: "CalibrationSet", y):
                model.fit(holdout, y)
            """
        )
        assert [d.rule_id for d in findings] == ["REP301"]
        assert "holdout" in findings[0].message

    def test_rep301_train_test_split_seam(self):
        findings = _analyze_source(
            """
            def leak(model, X, y, train_test_split):
                X_train, X_test, y_train, y_test = train_test_split(X, y)
                model.fit(X_test, y_train)
            """
        )
        assert [d.rule_id for d in findings] == ["REP301"]

    def test_rep201_requires_submission(self):
        # Mutating a captured list from a nested function that is NOT
        # submitted anywhere is ordinary Python.
        findings = _analyze_source(
            """
            def build(items):
                out = []
                def push(item):
                    out.append(item)
                for item in items:
                    push(item)
                return out
            """
        )
        assert findings == []

    def test_rep204_keyword_seed_sink(self):
        findings = _analyze_source(
            """
            import time

            def wait(policy):
                return policy.delay(seed=time.time_ns())
            """
        )
        assert [d.rule_id for d in findings] == ["REP204"]

    def test_inline_suppression_honoured(self, tmp_path):
        source = textwrap.dedent(
            """
            def names(tags):
                tag_set = set(tags)
                return list(tag_set)  # reprolint: disable=REP203
            """
        )
        plain = tmp_path / "plain.py"
        plain.write_text(source.replace("  # reprolint: disable=REP203", ""))
        suppressed = tmp_path / "suppressed.py"
        suppressed.write_text(source)
        engine = AnalysisEngine(config=LintConfig())
        assert engine.analyze_files([str(plain)]).diagnostics, (
            "rule should fire without the suppression comment"
        )
        result = engine.analyze_files([str(suppressed)])
        assert result.diagnostics == []
        assert result.checked_files == 1
