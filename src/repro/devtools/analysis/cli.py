"""``python -m repro analyze`` -- the whole-program analysis CLI.

Usage::

    python -m repro analyze src                     # deep pass, text report
    python -m repro analyze --format sarif src      # SARIF 2.1.0 to stdout
    python -m repro analyze --sarif-output out.sarif src   # report + artifact
    python -m repro analyze --write-baseline src    # accept current findings
    python -m repro analyze --list-rules            # the REP2xx/REP3xx packs

Exit codes are stable for CI wiring and match reprolint:

* ``0`` -- no unbaselined findings and no engine errors,
* ``1`` -- at least one new (unbaselined, unsuppressed) finding,
* ``2`` -- engine error: unreadable/unparseable file, bad config, bad
  baseline, usage error.  A deep pass that could not see the whole
  program refuses to certify it clean.

Configuration comes from ``[tool.reprolint.analysis]`` in the nearest
``pyproject.toml`` (see :mod:`repro.devtools.config`); ``--baseline``
overrides the configured baseline path, ``--no-baseline`` ignores it.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.devtools.analysis.baseline import (
    Baseline,
    load_baseline,
    write_baseline,
)
from repro.devtools.analysis.engine import analyze_paths
from repro.devtools.analysis.rules import ALL_ANALYSIS_RULES, get_analysis_rule
from repro.devtools.config import LintConfig, load_config
from repro.devtools.diagnostics import PARSE_ERROR_ID, Diagnostic
from repro.devtools.reporters import render_json, render_sarif, render_text

__all__ = ["build_parser", "main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs tooling)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description=(
            "whole-program flow analysis: concurrency-determinism races "
            "(REP2xx) and conformal calibration hygiene (REP3xx)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (e.g. 'src')",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif-output",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--enable",
        action="append",
        default=[],
        metavar="RULE",
        help="run only these analysis rules (id or name; repeatable)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE",
        help="switch these analysis rules off (id or name; repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of accepted findings (overrides config)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any configured baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every analysis rule with its rationale and exit",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.reprolint] / [tool.reprolint.analysis] config",
    )
    return parser


def _list_rules() -> str:
    lines: List[str] = []
    for rule in ALL_ANALYSIS_RULES:
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"    {rule.summary}")
        lines.append(f"    why: {rule.rationale}")
    return "\n".join(lines)


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    if args.no_config:
        config = LintConfig()
    else:
        anchor = args.paths[0] if args.paths else None
        config = load_config(anchor)
    for identifier in (*args.enable, *args.disable):
        if get_analysis_rule(identifier) is None and not any(
            rule.name == identifier for rule in ALL_ANALYSIS_RULES
        ):
            raise KeyError(f"unknown analysis rule: {identifier}")
    analysis = config.analysis
    if args.enable:
        analysis = replace(
            analysis, enable=frozenset(args.enable), disable=frozenset()
        )
    if args.disable:
        analysis = replace(
            analysis, disable=analysis.disable | frozenset(args.disable)
        )
    return replace(config, analysis=analysis)


def _error_diagnostics(result_errors) -> List[Diagnostic]:
    """Engine errors rendered in the same shape as findings."""
    return [
        Diagnostic(
            path=error.path,
            line=error.line,
            column=0,
            rule_id=PARSE_ERROR_ID,
            rule_name="engine-error",
            message=error.message,
        )
        for error in result_errors
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # The consumer closed stdout early (``... | head``); that is not
        # an engine failure and must not traceback.  Point stdout at
        # /dev/null so the interpreter's exit-time flush stays quiet,
        # and exit with the conventional 128 + SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src')", file=sys.stderr)
        return EXIT_ERROR

    try:
        config = _resolve_config(args)
        result = analyze_paths(args.paths, config=config)
        baseline_path = args.baseline or config.analysis.baseline
        if args.no_baseline:
            baseline_path = None
        if args.write_baseline:
            if baseline_path is None:
                raise ValueError(
                    "--write-baseline needs --baseline FILE or a configured "
                    "[tool.reprolint.analysis] baseline"
                )
            write_baseline(baseline_path, result.diagnostics)
            print(
                f"wrote {len(result.diagnostics)} finding(s) to {baseline_path}"
            )
            return EXIT_ERROR if result.errors else EXIT_CLEAN
        if baseline_path is not None and Path(baseline_path).is_file():
            baseline = load_baseline(baseline_path)
        else:
            baseline = Baseline()
        new, baselined = baseline.filter(result.diagnostics)
    except (KeyError, ValueError, OSError) as error:
        message = error.args[0] if error.args else str(error)
        print(f"error: {message}", file=sys.stderr)
        return EXIT_ERROR

    for note in config.notes:
        print(f"note: {note}", file=sys.stderr)
    stale = baseline.unused_entries(result.diagnostics)
    for path, rule_id, _ in stale:
        print(
            f"note: stale baseline entry {rule_id} for {path} "
            "(finding no longer present)",
            file=sys.stderr,
        )
    if baselined:
        print(
            f"note: {len(baselined)} baselined finding(s) suppressed",
            file=sys.stderr,
        )

    reported = _error_diagnostics(result.errors) + new
    reported.sort(key=Diagnostic.sort_key)
    if args.sarif_output:
        Path(args.sarif_output).write_text(
            render_sarif(
                reported, tool_name="reprolint-analysis", rules=ALL_ANALYSIS_RULES
            )
            + "\n",
            encoding="utf-8",
        )
    if args.format == "sarif":
        print(
            render_sarif(
                reported, tool_name="reprolint-analysis", rules=ALL_ANALYSIS_RULES
            )
        )
    elif args.format == "json":
        print(render_json(reported, checked_files=result.checked_files))
    else:
        print(render_text(reported, checked_files=result.checked_files))

    if result.errors:
        return EXIT_ERROR
    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
