"""Table III -- average length & coverage of SCAN Vmin prediction intervals.

Regenerates the paper's central table: for every stress read point and
ATE temperature in scope, the 4-fold-CV average interval length (mV) and
empirical coverage (%) of the nine region predictors (GP, QR x {LR, NN,
XGBoost, CatBoost}, CQR x {LR, NN, XGBoost, CatBoost}) at alpha = 0.1.

Expected shape (paper Section IV-F):

* GP and the QR family under-cover the 90 % target on test folds,
* QR CatBoost collapses to ~1-2 mV bands with 10-25 % coverage (the
  package-default quantile pitfall -- see
  ``repro.models.quantile.PackageDefaultQuantileBand``),
* every CQR variant restores ~90 % coverage,
* CQR CatBoost is the shortest (or near-shortest) calibrated variant;
  CQR NN is the widest.
"""

from __future__ import annotations

from conftest import publish

from repro.eval.experiments import REGION_METHOD_NAMES, run_region_experiment
from repro.eval.reporting import format_table


def _render(dataset, profile, bench_scope) -> str:
    temperatures, read_points = bench_scope
    sections = []
    for hours in read_points:
        headers = ["Method"]
        for temperature in temperatures:
            headers += [f"Len(mV)@{temperature:g}C", f"Cov(%)@{temperature:g}C"]
        rows = []
        for method in REGION_METHOD_NAMES:
            row = [method]
            for temperature in temperatures:
                result = run_region_experiment(
                    dataset, method, temperature, hours, profile=profile
                )
                row += [result.width, result.coverage * 100.0]
            rows.append(row)
        sections.append(
            format_table(
                headers,
                rows,
                title=f"Table III | stress time {hours} h (alpha=0.1)",
            )
        )
    return "\n\n".join(sections)


def test_table3_interval_prediction(benchmark, dataset, profile, bench_scope):
    text = benchmark.pedantic(
        _render, args=(dataset, profile, bench_scope), rounds=1, iterations=1
    )
    publish("table3_intervals", text)
