"""Safe set/clock patterns that shape-match REP203/REP204."""

import time


def sorted_iteration(records):
    unique = {record.name for record in records}
    ordered = []
    for name in sorted(unique):  # sorted(): deterministic order
        ordered.append(name)
    return ordered


def order_free_reductions(tags):
    tag_set = set(tags)
    total = sum(1 for _ in tag_set)  # order-independent consumers
    return total, len(tag_set), max(tag_set), ", ".join(sorted(tag_set))


def dict_iteration(counts):
    lines = []
    for key in counts:  # dicts are insertion-ordered: fine
        lines.append(f"{key}={counts[key]}")
    return lines


def timed_run(fn, fingerprint, config):
    """Timing around a fingerprint is fine -- the clock stays out of it."""
    started = time.perf_counter()
    key = fingerprint(config)
    elapsed = time.perf_counter() - started
    return key, elapsed
