"""REP202 fixture: nondeterministic RNG use inside parallel task bodies."""

import random

import numpy as np

from .pool import parallel_map

SHARED_RNG = np.random.default_rng(1234)


def simulate_fresh_entropy(seeds):
    def draw(_seed):
        rng = np.random.default_rng()  # REP202: unseeded inside a task
        return rng.normal()

    return parallel_map(draw, seeds)


def simulate_shared_generator(seeds):
    def draw(_seed):
        return SHARED_RNG.normal()  # REP202: module-level generator

    return parallel_map(draw, seeds)


def simulate_stdlib_random(seeds):
    def draw(_seed):
        return random.random()  # REP202: stdlib global state

    return parallel_map(draw, seeds)


def simulate_legacy_numpy(seeds):
    def draw(_seed):
        return np.random.normal()  # REP202: legacy global numpy state

    return parallel_map(draw, seeds)
