"""Tests for the serving readiness state machine and its audit trail."""

import pytest

from repro.serve import (
    FallbackLevel,
    HealthStateMachine,
    IllegalTransition,
    ReasonCode,
    ServiceState,
)


class TestStateMachine:
    def test_starts_unready(self):
        machine = HealthStateMachine()
        assert machine.state is ServiceState.STARTING
        assert not machine.ready
        assert not machine.nominal
        assert machine.transitions_ == []

    def test_startup_to_ready(self):
        machine = HealthStateMachine()
        record = machine.transition(
            ServiceState.READY, ReasonCode.STARTUP_COMPLETE, "serving v0001"
        )
        assert machine.state is ServiceState.READY
        assert machine.ready and machine.nominal
        assert record.from_state is ServiceState.STARTING
        assert record.to_state is ServiceState.READY
        assert record.reason is ReasonCode.STARTUP_COMPLETE
        assert machine.transitions_ == [record]

    def test_degraded_is_ready_but_not_nominal(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.DEGRADED, ReasonCode.ROLLED_BACK)
        assert machine.ready
        assert not machine.nominal

    def test_ready_degraded_roundtrip(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.READY, ReasonCode.STARTUP_COMPLETE)
        machine.transition(ServiceState.DEGRADED, ReasonCode.COVERAGE_ALARM)
        machine.transition(ServiceState.READY, ReasonCode.COVERAGE_RECOVERED)
        assert machine.state is ServiceState.READY
        assert len(machine.transitions_) == 3

    def test_draining_is_terminal(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.READY, ReasonCode.STARTUP_COMPLETE)
        machine.transition(ServiceState.DRAINING, ReasonCode.DRAIN_REQUESTED)
        with pytest.raises(IllegalTransition, match="draining -> ready"):
            machine.transition(ServiceState.READY, ReasonCode.MODEL_VERIFIED)
        # Audit self-loops while the queue empties remain legal.
        machine.note(ReasonCode.DRAIN_REQUESTED, "2 batches in flight")
        assert machine.state is ServiceState.DRAINING

    def test_ready_cannot_return_to_starting(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.READY, ReasonCode.STARTUP_COMPLETE)
        with pytest.raises(IllegalTransition):
            machine.transition(ServiceState.STARTING, ReasonCode.HOT_SWAP)
        # The illegal attempt must not pollute the audit trail.
        assert len(machine.transitions_) == 1

    def test_note_records_without_changing_state(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.READY, ReasonCode.STARTUP_COMPLETE)
        record = machine.note(ReasonCode.HOT_SWAP, "v0001 -> v0002")
        assert machine.state is ServiceState.READY
        assert record.from_state is record.to_state
        assert record.detail == "v0001 -> v0002"


class TestAudit:
    def _exercised(self):
        machine = HealthStateMachine()
        machine.transition(ServiceState.READY, ReasonCode.STARTUP_COMPLETE)
        machine.note(ReasonCode.MODEL_VERIFIED, "v0001 checksum ok")
        machine.note(ReasonCode.ARTIFACT_CORRUPT, "v0002: digest mismatch")
        machine.transition(ServiceState.DEGRADED, ReasonCode.ROLLED_BACK)
        machine.transition(ServiceState.READY, ReasonCode.MODEL_VERIFIED)
        return machine

    def test_downgrades_capture_loss_events_only(self):
        machine = self._exercised()
        reasons = [record.reason for record in machine.downgrades()]
        # The corrupt-artifact note and the degradation edge are losses;
        # startup, verification, and the recovery edge are not.
        assert reasons == [ReasonCode.ARTIFACT_CORRUPT, ReasonCode.ROLLED_BACK]

    def test_every_downgrade_carries_a_reason(self):
        machine = self._exercised()
        assert all(
            record.reason.value for record in machine.downgrades()
        )

    def test_history_filters_by_reason(self):
        machine = self._exercised()
        verified = machine.history(ReasonCode.MODEL_VERIFIED)
        assert len(verified) == 2
        assert len(machine.history()) == len(machine.transitions_)

    def test_describe_renders_edge_and_self_loop(self):
        machine = HealthStateMachine()
        edge = machine.transition(
            ServiceState.READY, ReasonCode.STARTUP_COMPLETE, "serving v0001"
        )
        loop = machine.note(ReasonCode.HOT_SWAP)
        assert edge.describe() == (
            "[startup_complete] starting -> ready: serving v0001"
        )
        assert loop.describe() == "[hot_swap] ready"


class TestFallbackLevels:
    def test_levels_order_best_to_worst(self):
        assert (
            FallbackLevel.CURRENT
            < FallbackLevel.LAST_KNOWN_GOOD
            < FallbackLevel.PARAMETRIC
            < FallbackLevel.REJECT
        )

    def test_any_level_above_current_is_a_downgrade(self):
        assert all(
            level > FallbackLevel.CURRENT
            for level in FallbackLevel
            if level is not FallbackLevel.CURRENT
        )
