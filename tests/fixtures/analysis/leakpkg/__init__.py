"""Seeded REP3xx fixture: conformal calibration hygiene violations.

Analyzed statically by the engine tests -- never imported at runtime.
Every violation here must be caught; see tests/test_analysis_rules.py.
"""
