"""Compiled-kernel plumbing between the registry and the scoring path.

The boosting models compile themselves into decision tables at ``fit``
time (:mod:`repro.models.tables`), but a serving deployment also loads
bundles *pickled before that existed*: a registry is append-only, and
quarantine rollbacks deliberately reach back to old versions.  This
module closes that gap from the serving side:

* :func:`ensure_compiled` walks a fitted flow to every boosting
  ensemble inside it (primary and fallback flows, the CQR band's lower
  and upper quantile models, feature-selection wrappers) and compiles
  any ensemble that lacks a ``compiled_`` kernel -- so a verified load
  of a pre-kernel bundle still scores batch-at-once.  The walk is a
  no-op on ensembles already compiled and on objects it does not
  recognise, which keeps it safe to run on anything the registry can
  store.
* :func:`compiled_summary` reports the kernels a model will score
  through, in manifest-ready JSON.  ``ModelRegistry.publish`` records
  it so the manifest documents *how* a version scores, not just what
  it is, and the CLI/soak harness can surface it without unpickling.

``ensure_compiled`` mutates the model (it attaches fitted attributes),
which is exactly why it lives here and not inside any ``predict``: the
repository's read-only-predict convention (REP106) reserves prediction
methods from state changes, so compilation happens at load/publish
time instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List

from repro.models.gbm import GradientBoostingRegressor
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.tables import compile_depthwise, compile_oblivious

__all__ = ["compiled_summary", "ensure_compiled"]

# Fitted-attribute edges the walk follows from a flow object down to
# its boosting ensembles.  Templates (unfitted ``estimator`` params)
# are deliberately not walked: only models that actually score traffic
# need kernels.
_CHILD_ATTRIBUTES = (
    "primary_",   # RobustVminFlow -> VminPredictionFlow
    "fallback_",  # RobustVminFlow -> monitor-only VminPredictionFlow
    "cqr_",       # VminPredictionFlow -> ConformalizedQuantileRegressor
    "band_",      # ConformalizedQuantileRegressor -> QuantileBandRegressor
    "lower_",     # QuantileBandRegressor -> quantile model
    "upper_",     # QuantileBandRegressor -> quantile model
    "model_",     # CFSSelectedRegressor -> inner fitted model
)


def _iter_ensembles(model: Any) -> Iterator[Any]:
    """Yield every boosting ensemble reachable from ``model``.

    Depth-first over the known fitted-attribute edges, cycle-safe (a
    visited set on object identity), and silent on unknown objects --
    the registry stores arbitrary picklables and the walk must never
    make loading one fail.
    """
    stack = [model]
    seen = set()
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(
            obj, (GradientBoostingRegressor, ObliviousBoostingRegressor)
        ):
            yield obj
            continue
        for name in _CHILD_ATTRIBUTES:
            child = getattr(obj, name, None)
            if child is not None:
                stack.append(child)


def ensure_compiled(model: Any) -> int:
    """Compile every fitted-but-uncompiled ensemble inside ``model``.

    Returns the number of ensembles newly compiled (0 when everything
    already carries a kernel, the model holds no ensembles, or the
    object is not a recognised flow at all).  Unfitted ensembles are
    left alone -- they cannot score traffic anyway.
    """
    compiled = 0
    for ensemble in _iter_ensembles(model):
        if ensemble.trees_ is None:
            continue
        if getattr(ensemble, "compiled_", None) is not None:
            continue
        if isinstance(ensemble, ObliviousBoostingRegressor):
            ensemble.compiled_ = compile_oblivious(ensemble.trees_)
        else:
            ensemble.compiled_ = compile_depthwise(ensemble.trees_)
        compiled += 1
    return compiled


def compiled_summary(model: Any) -> List[Dict[str, Any]]:
    """Manifest-ready description of the kernels ``model`` scores through.

    One entry per reachable boosting ensemble, in walk order; an empty
    list means the model either holds no ensembles or none are compiled
    (e.g. a parametric-only flow).
    """
    summaries: List[Dict[str, Any]] = []
    for ensemble in _iter_ensembles(model):
        kernel = getattr(ensemble, "compiled_", None)
        if kernel is not None:
            summaries.append(kernel.summary())
    return summaries
