"""Deterministic parallel mapping for the training/evaluation hot path.

The experiment grid of the paper -- 5 model families x 2 quantiles x 4
CV folds x 3 temperatures x 6 read points -- is embarrassingly parallel:
split-conformal calibration is independent per model and per fold
(Romano et al., *Conformalized Quantile Regression*).  This module
provides the one primitive everything fans out through:

* :func:`parallel_map` -- an ordered map over a worker pool.  Results
  come back in input order regardless of completion order, worker
  exceptions propagate to the caller, and the map degrades to a plain
  serial loop when one job is requested, when there is at most one item,
  or when the pool cannot be created (restricted sandboxes).
* :func:`parallel_map_outcomes` -- the resilient variant: every task is
  run under an optional :class:`~repro.runtime.retry.RetryPolicy` and
  timeout, and the return value is one :class:`TaskOutcome` per item --
  successes *and* failures, in input order -- instead of the first
  exception discarding every completed sibling.
* :func:`effective_n_jobs` -- resolves the job count from an explicit
  argument, the ``REPRO_N_JOBS`` environment variable, or the serial
  default, with ``-1`` meaning "all cores".
* :func:`spawn_seeds` -- deterministic per-task child seeds from one
  parent seed via :class:`numpy.random.SeedSequence`, so seeded work
  stays reproducible no matter how it is scheduled.

Timeout semantics follow the backend's capabilities (see
:mod:`repro.runtime.watchdog`): thread workers get a *cooperative*
deadline (code that calls ``check_deadline`` is interrupted; code that
never checks is not), while process workers that blow their budget are
**hard-killed** -- the pool is torn down and the unfinished tasks are
re-executed serially, each in its own kill-able subprocess, so one
stuck worker degrades the map to serial re-execution instead of
hanging or aborting it.

Determinism contract: for a pure ``fn``, ``parallel_map(fn, items, n)``
returns the same list for every ``n`` -- the test suite asserts this for
the cross-validation and experiment-grid callers.  Retries and timeouts
only change *when* work runs, never what it computes.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import (
    Callable,
    Generic,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

import numpy as np

from repro.runtime.retry import RetryPolicy, run_attempts
from repro.runtime.watchdog import TaskTimeout, deadline_scope, run_in_subprocess

__all__ = [
    "TaskOutcome",
    "effective_n_jobs",
    "parallel_map",
    "parallel_map_outcomes",
    "spawn_seeds",
]

T = TypeVar("T")
R = TypeVar("R")

_ENV_VAR = "REPRO_N_JOBS"


def effective_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Resolve the worker count for a parallel region.

    ``None`` defers to the ``REPRO_N_JOBS`` environment variable and
    falls back to 1 (serial) -- the deterministic-by-default posture.
    ``-1`` means one worker per available core; any other value must be
    a positive integer.
    """
    if n_jobs is None:
        raw = os.environ.get(_ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"{_ENV_VAR} must be an integer, got {raw!r}"
            ) from None
    if n_jobs == -1:
        return max(1, os.cpu_count() or 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 or -1, got {n_jobs}")
    return int(n_jobs)


def spawn_seeds(seed: Optional[int], n: int) -> List[Optional[int]]:
    """``n`` independent child seeds derived deterministically from ``seed``.

    A ``None`` parent yields ``None`` children (fresh entropy per task,
    explicitly not reproducible).  Otherwise children come from
    ``SeedSequence(seed).spawn`` and are stable across processes,
    platforms, and scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if seed is None:
        return [None] * n
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(child.generate_state(1)[0]) for child in children]


@dataclass(frozen=True)
class TaskOutcome(Generic[R]):
    """Per-task result of :func:`parallel_map_outcomes`.

    Exactly one of ``value`` / ``error`` is meaningful, discriminated by
    :attr:`ok`.  ``attempts`` counts executions including retries;
    ``timed_out`` marks failures whose final error was a
    :class:`~repro.runtime.watchdog.TaskTimeout`.
    """

    index: int
    value: Optional[R]
    error: Optional[BaseException]
    attempts: int

    @property
    def ok(self) -> bool:
        """Whether the task eventually produced a value."""
        return self.error is None

    @property
    def timed_out(self) -> bool:
        """Whether the final failure was a deadline overrun."""
        return isinstance(self.error, TaskTimeout)


def _execute_task(
    fn: Callable[[T], R],
    item: T,
    index: int,
    retry_policy: Optional[RetryPolicy],
    timeout: Optional[float],
    isolate: bool = False,
) -> TaskOutcome:
    """Run one task under deadline + retry, capturing the outcome.

    ``isolate=True`` runs every attempt in a dedicated subprocess with a
    hard kill (the requeue path of the process backend); otherwise the
    attempt runs in-process under a cooperative deadline scope.
    """
    if isolate:
        def attempt() -> R:
            return run_in_subprocess(fn, item, timeout=timeout)
    else:
        def attempt() -> R:
            with deadline_scope(timeout):
                return fn(item)

    result = run_attempts(attempt, policy=retry_policy, task_key=index)
    return TaskOutcome(
        index=index,
        value=result.value,
        error=result.error,
        attempts=result.attempts,
    )


class _ResilientTask:
    """Picklable per-item worker wrapping retry + cooperative deadline."""

    def __init__(
        self,
        fn: Callable[[T], R],
        retry_policy: Optional[RetryPolicy],
        timeout: Optional[float],
    ) -> None:
        self.fn = fn
        self.retry_policy = retry_policy
        self.timeout = timeout

    def __call__(self, indexed: Tuple[int, T]) -> TaskOutcome:
        """Run one (index, item) pair to a :class:`TaskOutcome`."""
        index, item = indexed
        return _execute_task(
            self.fn, item, index, self.retry_policy, self.timeout
        )


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """Hard-kill every worker of a process pool (stuck-task watchdog)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead workers
            pass


def _drain_after_failure(
    futures: Sequence["Future[TaskOutcome]"],
    outcomes: List[Optional[TaskOutcome]],
) -> List[int]:
    """Harvest finished futures after a pool failure; return requeue indices."""
    requeue: List[int] = []
    for index, future in enumerate(futures):
        if outcomes[index] is not None:
            continue
        harvested = False
        if future.done() and not future.cancelled():
            try:
                outcomes[index] = future.result(timeout=0)
                harvested = True
            except Exception:
                harvested = False
        if not harvested:
            future.cancel()
            requeue.append(index)
    return requeue


def _pooled_outcomes(
    fn: Callable[[T], R],
    work: Sequence[T],
    jobs: int,
    backend: str,
    retry_policy: Optional[RetryPolicy],
    timeout: Optional[float],
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> Optional[List[TaskOutcome]]:
    """Run the pool path; ``None`` means "fall back to serial".

    Thread backend: purely cooperative timeouts, results drained in
    order.  Process backend: each future is awaited with the task
    timeout; a worker that neither finishes nor fails within its budget
    (or a pool whose process died) gets the pool killed and every
    unfinished task requeued through the serial subprocess path.
    """
    executor_cls = ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
    task = _ResilientTask(fn, retry_policy, timeout)
    try:
        pool = executor_cls(
            max_workers=min(jobs, len(work)),
            initializer=initializer,
            initargs=initargs,
        )
    except (OSError, RuntimeError, PermissionError):
        # Restricted environments (no spawn semaphores, thread limits):
        # keep the results identical and just give up the speedup.
        return None
    outcomes: List[Optional[TaskOutcome]] = [None] * len(work)
    requeue: List[int] = []
    with pool:
        try:
            futures = [
                pool.submit(task, (index, item))
                for index, item in enumerate(work)
            ]
        except (OSError, RuntimeError, BrokenProcessPool):
            return None
        wait_timeout = timeout if backend == "process" else None
        for index, future in enumerate(futures):
            try:
                outcomes[index] = future.result(timeout=wait_timeout)
            except FutureTimeoutError:
                # Stuck worker: kill the pool, requeue everything that
                # has not finished.  Serial re-execution (isolated, hard
                # timeout per attempt) happens below, outside the pool.
                _kill_pool_processes(pool)
                requeue = _drain_after_failure(futures, outcomes)
                break
            except BrokenProcessPool:
                # A worker died (crash, OOM-kill): salvage completed
                # futures, requeue the rest.
                requeue = _drain_after_failure(futures, outcomes)
                break
        pool.shutdown(wait=False)
    isolate = backend == "process"
    for index in requeue:
        outcomes[index] = _execute_task(
            fn, work[index], index, retry_policy, timeout, isolate=isolate
        )
    return [outcome for outcome in outcomes if outcome is not None]


def parallel_map_outcomes(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: Optional[int] = None,
    backend: str = "thread",
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[TaskOutcome]:
    """Resilient ordered map: one :class:`TaskOutcome` per item, no raising.

    The capture-everything primitive underneath :func:`parallel_map` and
    the experiment grids: a failing task records its final exception in
    its outcome instead of discarding the completed siblings, retries
    follow ``retry_policy`` (transient faults only by default, with a
    deterministic per-task backoff schedule), and ``timeout`` bounds
    each task as the backend allows -- cooperatively for threads,
    hard-kill + serial requeue for processes.

    ``initializer(*initargs)`` runs once per pool worker before any task
    (the process backend uses it to attach shared-memory payloads); when
    the map degrades to the serial loop it runs once, in-process, before
    the first task, so worker state is set up no matter how work is
    scheduled.  Both must be picklable for ``backend="process"``.

    Task-level exceptions never propagate; infrastructure errors in the
    caller's own arguments (unknown backend, bad job count) still raise.
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"backend must be 'thread' or 'process', got {backend!r}"
        )
    if timeout is not None and not timeout > 0.0:
        raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
    work = list(items)
    jobs = effective_n_jobs(n_jobs)
    if jobs > 1 and len(work) > 1:
        pooled = _pooled_outcomes(
            fn, work, jobs, backend, retry_policy, timeout,
            initializer, initargs,
        )
        if pooled is not None:
            return pooled
    if initializer is not None:
        initializer(*initargs)
    return [
        _execute_task(fn, item, index, retry_policy, timeout)
        for index, item in enumerate(work)
    ]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: Optional[int] = None,
    backend: str = "thread",
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> List[R]:
    """Map ``fn`` over ``items`` with ordered results.

    Parameters
    ----------
    fn:
        The per-item worker.  Must be pure with respect to shared state;
        for ``backend="process"`` it must also be picklable (a top-level
        function), which is why ``"thread"`` is the default -- the numpy
        kernels dominating this codebase release the GIL, and closures
        over local data (fold builders, experiment cells) stay usable.
    items:
        The work list; consumed eagerly so the result order is defined.
    n_jobs:
        Worker count; ``None`` resolves via :func:`effective_n_jobs`
        (``REPRO_N_JOBS`` or serial).
    backend:
        ``"thread"`` or ``"process"``.
    retry_policy:
        Optional :class:`~repro.runtime.retry.RetryPolicy`; transient
        faults are re-executed on a deterministic backoff schedule
        before counting as failures.
    timeout:
        Optional per-task budget in seconds (cooperative for threads,
        hard kill + requeue for processes); overruns raise
        :class:`~repro.runtime.watchdog.TaskTimeout`, which the retry
        policy may re-run.
    initializer, initargs:
        Optional once-per-worker setup hook, exactly as in
        :func:`parallel_map_outcomes`.

    Results are collected in input order.  When any task ultimately
    fails, the first failure (in input order) is re-raised in the
    caller; use :func:`parallel_map_outcomes` to capture per-task
    failures alongside the completed results instead.  If the pool
    itself cannot be created the map silently degrades to the serial
    loop -- same results, no speedup -- so callers never need a
    fallback path of their own.
    """
    outcomes = parallel_map_outcomes(
        fn,
        items,
        n_jobs=n_jobs,
        backend=backend,
        retry_policy=retry_policy,
        timeout=timeout,
        initializer=initializer,
        initargs=initargs,
    )
    for outcome in outcomes:
        if outcome.error is not None:
            raise outcome.error
    return [outcome.value for outcome in outcomes]
