"""Rule protocol: how a reprolint check plugs into the engine.

A rule is a small stateful object.  For every module the engine calls
:meth:`Rule.start_module`, then dispatches AST nodes to ``visit_<Type>``
methods (single shared tree walk -- rules never re-walk the tree
themselves unless they need a private pre-pass), then collects any
module-level findings from :meth:`Rule.finish_module`.  Handlers yield
:class:`~repro.devtools.diagnostics.Diagnostic` objects; the engine
applies inline suppressions and config filtering afterwards.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Tuple

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.devtools.engine import ModuleContext

__all__ = ["Rule", "dotted_name"]


def dotted_name(node: ast.AST) -> str:
    """Resolve an ``ast.Attribute``/``ast.Name`` chain to ``"a.b.c"``.

    Returns an empty string for expressions that are not plain dotted
    access (subscripts, calls, literals), which callers treat as
    "cannot tell -- do not flag".
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class Rule:
    """Base class for all reprolint rules.

    Class attributes
    ----------------
    rule_id:
        Stable machine id (``"REP1xx"``); used in reports, config, and
        ``# reprolint: disable=`` comments.
    name:
        Human-readable slug, also accepted in suppressions and config.
    summary:
        One-line description shown by ``--list-rules``.
    rationale:
        Why the rule exists (surfaces in ``--list-rules --verbose`` and
        docs).
    scopes:
        File roles the rule applies to: ``"src"``, ``"test"`` or both.
        Path→role classification lives in the engine.
    """

    rule_id: str = "REP999"
    name: str = "abstract-rule"
    summary: str = ""
    rationale: str = ""
    scopes: FrozenSet[str] = frozenset({"src"})

    def applies_to(self, role: str) -> bool:
        """Return whether this rule runs on files classified as ``role``."""
        return role in self.scopes

    def start_module(self, context: "ModuleContext") -> None:
        """Reset per-module state; rules needing a pre-pass do it here."""

    def finish_module(self, context: "ModuleContext") -> Iterable[Diagnostic]:
        """Yield findings that need the whole module to have been seen."""
        return ()

    def handlers(self) -> Dict[type, Tuple[str, ...]]:
        """Map AST node types to the names of ``visit_*`` methods defined.

        The engine uses this to dispatch each node exactly once per rule
        without ``getattr`` probing on every node.
        """
        table: Dict[type, Tuple[str, ...]] = {}
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_") :], None)
            if isinstance(node_type, type) and issubclass(node_type, ast.AST):
                table[node_type] = table.get(node_type, ()) + (attr,)
        return table

    def diagnostic(self, node: ast.AST, context: "ModuleContext", message: str) -> Diagnostic:
        """Build a :class:`Diagnostic` for ``node`` in this rule's name."""
        return Diagnostic(
            path=context.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            rule_name=self.name,
            message=message,
        )
