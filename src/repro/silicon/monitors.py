"""On-chip monitor response models: ROD and CPD sensor banks.

The chip under study carries two monitor types (paper Section IV-A):

* **ROD** -- 168 ring-oscillator-delay sensors, read on ATE at 25 degC at
  every stress read point.  We model them as 8 gate flavours (SVT/LVT/HVT
  style stacks with different Vth sensitivity) replicated at 21 die sites,
  so the bank observes global process, within-die gradients, local
  mismatch, and accumulated aging.
* **CPD** -- 10 in-situ critical-path-delay sensors, read inside the
  burn-in oven at 80 degC.  Each replica path sits at a die location and
  additionally picks up a weak signature of a nearby latent defect -- the
  channel through which interval predictors can partially see outliers.

Delay response is first-order: ``delay = base * (1 + sens * v_eff / v0)``
with ``v_eff`` the sum of the local effective Vth contributions, plus a
per-reading measurement noise.  Readings are in picoseconds.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import check_random_state
from repro.silicon.aging import AgedPopulation
from repro.silicon.constants import (
    CPD_TEMPERATURE_C,
    N_CPD_SENSORS,
    N_ROD_SENSORS,
    ROD_TEMPERATURE_C,
)
from repro.silicon.defects import DefectPopulation
from repro.silicon.process import ProcessSample, ProcessVariationModel

__all__ = ["CPDSensorBank", "RODSensorBank"]

_ROD_FLAVOURS = 8
_ROD_SITES = N_ROD_SENSORS // _ROD_FLAVOURS  # 21 sites x 8 flavours = 168


def _site_grid(n_sites: int, rng) -> np.ndarray:
    """Quasi-uniform sensor placement over the normalised die [-1, 1]^2."""
    side = int(np.ceil(np.sqrt(n_sites)))
    coords = np.linspace(-0.9, 0.9, side)
    grid = np.array([(x, y) for y in coords for x in coords])[:n_sites]
    jitter = rng.uniform(-0.05, 0.05, size=grid.shape)
    return grid + jitter


class RODSensorBank:
    """The 168-sensor ring-oscillator-delay bank.

    Parameters
    ----------
    mismatch_sigma_v:
        Local per-sensor random Vth mismatch (V), frozen per chip at
        fabrication time.
    noise_ps:
        Per-reading measurement noise (ps).
    aging_sensitivity:
        Fraction of the chip's core ΔVth(t) the RO devices experience
        (ROs share the stress but switch at their own activity).
    """

    def __init__(
        self,
        mismatch_sigma_v: float = 0.0025,
        noise_ps: float = 0.25,
        aging_sensitivity: float = 0.9,
        random_state: Optional[int] = None,
    ) -> None:
        if mismatch_sigma_v < 0 or noise_ps < 0:
            raise ValueError("mismatch_sigma_v and noise_ps must be >= 0")
        if not 0.0 <= aging_sensitivity <= 1.5:
            raise ValueError(
                f"aging_sensitivity must be in [0, 1.5], got {aging_sensitivity}"
            )
        self.mismatch_sigma_v = mismatch_sigma_v
        self.noise_ps = noise_ps
        self.aging_sensitivity = aging_sensitivity
        self.random_state = random_state

        rng = check_random_state(random_state)
        self._sites = _site_grid(_ROD_SITES, rng)
        # Flavour electrical signatures: base stage delay and Vth
        # sensitivity (HVT-like flavours are slower and more sensitive).
        self._base_delay_ps = rng.uniform(90.0, 380.0, size=_ROD_FLAVOURS)
        self._vth_sensitivity = rng.uniform(0.8, 1.6, size=_ROD_FLAVOURS)
        self._fabricated: Optional[np.ndarray] = None

    @property
    def n_sensors(self) -> int:
        return N_ROD_SENSORS

    @property
    def temperature_c(self) -> float:
        return ROD_TEMPERATURE_C

    def sensor_names(self) -> List[str]:
        """Stable channel names, flavour-major."""
        return [
            f"rod_f{flavour}_s{site:02d}"
            for flavour in range(_ROD_FLAVOURS)
            for site in range(_ROD_SITES)
        ]

    def fabricate(self, process: ProcessSample, rng) -> None:
        """Freeze per-chip, per-sensor local mismatch at fabrication."""
        rng = check_random_state(rng)
        model = ProcessVariationModel()
        self._fabricated = model.mismatch(
            process.n_chips, self.n_sensors, self.mismatch_sigma_v, rng
        )
        self._process = process

    def read(self, aging: AgedPopulation, hours: float, rng) -> np.ndarray:
        """One ATE reading of every sensor: (n_chips, 168) delays in ps.

        The reading reflects the chip state *at* the given stress read
        point: systematic Vth at each site + frozen mismatch + the aged
        ΔVth, plus fresh measurement noise per reading.
        """
        if self._fabricated is None:
            raise RuntimeError("call fabricate() before read()")
        rng = check_random_state(rng)
        x = np.tile(self._sites[:, 0], _ROD_FLAVOURS)
        y = np.tile(self._sites[:, 1], _ROD_FLAVOURS)
        local_vth = self._process.local_vth(x, y) + self._fabricated
        aged = self.aging_sensitivity * aging.vth_shift_at(hours)
        v_eff = local_vth + aged[:, None]

        base = np.repeat(self._base_delay_ps, _ROD_SITES)[None, :]
        sensitivity = np.repeat(self._vth_sensitivity, _ROD_SITES)[None, :]
        # 100 mV of Vth moves delay by sens * ~33 %: a strong, realistic knob.
        delay = base * (1.0 + sensitivity * v_eff / 0.3)
        noise = rng.normal(0.0, self.noise_ps, size=delay.shape)
        return delay + noise


class CPDSensorBank:
    """The 10-path in-situ critical-path-delay bank (80 degC, in oven).

    Each path replica has its own base delay, Vth sensitivity, die
    location, and defect-proximity coupling; aging is observed at full
    strength because the replicas toggle with the mission workload.
    """

    def __init__(
        self,
        mismatch_sigma_v: float = 0.0030,
        noise_ps: float = 1.5,
        aging_sensitivity: float = 1.0,
        random_state: Optional[int] = None,
    ) -> None:
        if mismatch_sigma_v < 0 or noise_ps < 0:
            raise ValueError("mismatch_sigma_v and noise_ps must be >= 0")
        self.mismatch_sigma_v = mismatch_sigma_v
        self.noise_ps = noise_ps
        self.aging_sensitivity = aging_sensitivity
        self.random_state = random_state

        rng = check_random_state(random_state)
        self._sites = _site_grid(N_CPD_SENSORS, rng)
        self._base_delay_ps = rng.uniform(600.0, 900.0, size=N_CPD_SENSORS)
        self._vth_sensitivity = rng.uniform(1.0, 1.4, size=N_CPD_SENSORS)
        self._fabricated: Optional[np.ndarray] = None

    @property
    def n_sensors(self) -> int:
        return N_CPD_SENSORS

    @property
    def temperature_c(self) -> float:
        return CPD_TEMPERATURE_C

    def sensor_names(self) -> List[str]:
        return [f"cpd_p{path}" for path in range(N_CPD_SENSORS)]

    def fabricate(
        self, process: ProcessSample, defects: DefectPopulation, rng
    ) -> None:
        """Freeze local mismatch and bind the defect population."""
        rng = check_random_state(rng)
        model = ProcessVariationModel()
        self._fabricated = model.mismatch(
            process.n_chips, self.n_sensors, self.mismatch_sigma_v, rng
        )
        self._process = process
        self._defects = defects

    def read(self, aging: AgedPopulation, hours: float, rng) -> np.ndarray:
        """One in-situ reading: (n_chips, 10) path delays in ps."""
        if self._fabricated is None:
            raise RuntimeError("call fabricate() before read()")
        rng = check_random_state(rng)
        x = self._sites[:, 0]
        y = self._sites[:, 1]
        local_vth = self._process.local_vth(x, y) + self._fabricated
        defect_vth = self._defects.monitor_coupling(x, y)
        aged = self.aging_sensitivity * aging.vth_shift_at(hours)
        v_eff = local_vth + defect_vth + aged[:, None]

        delay = self._base_delay_ps[None, :] * (
            1.0 + self._vth_sensitivity[None, :] * v_eff / 0.3
        )
        noise = rng.normal(0.0, self.noise_ps, size=delay.shape)
        return delay + noise
