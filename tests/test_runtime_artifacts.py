"""Tests for atomic artifact I/O and checksums (repro.runtime.artifacts)."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime.artifacts import (
    ArtifactCorruptionError,
    ArtifactError,
    atomic_path,
    atomic_write,
    file_checksum,
    verify_artifact,
    write_checksum,
    write_json_atomic,
    write_text_atomic,
)


class TestAtomicPath:
    def test_success_renames_into_place(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_path(target) as tmp:
            tmp.write_text("content")
            assert tmp.parent == target.parent  # same filesystem
        assert target.read_text() == "content"

    def test_failure_leaves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_path(target) as tmp:
                tmp.write_text("new half-writ")
                raise RuntimeError("crash mid-write")
        assert target.read_text() == "old"

    def test_failure_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_path(target):
                raise RuntimeError("crash")
        assert list(tmp_path.iterdir()) == []

    def test_suffix_override(self, tmp_path):
        with atomic_path(tmp_path / "lot", suffix=".npz") as tmp:
            assert tmp.suffix == ".npz"
            tmp.write_bytes(b"x")
        assert (tmp_path / "lot").exists()

    def test_missing_parent_directory_raises(self, tmp_path):
        with pytest.raises(OSError):
            with atomic_path(tmp_path / "no" / "such" / "dir" / "f.txt"):
                pass  # pragma: no cover - mkstemp fails first


class TestAtomicWrite:
    def test_text_write(self, tmp_path):
        target = tmp_path / "report.txt"
        with atomic_write(target) as handle:
            handle.write("hello")
        assert target.read_text() == "hello"

    def test_binary_write(self, tmp_path):
        target = tmp_path / "blob.bin"
        with atomic_write(target, "wb") as handle:
            handle.write(b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    @pytest.mark.parametrize("mode", ["r", "a", "r+", "w+"])
    def test_read_append_modes_rejected(self, tmp_path, mode):
        with pytest.raises(ValueError, match="fresh writes"):
            with atomic_write(tmp_path / "x", mode):
                pass  # pragma: no cover - rejected before opening

    def test_failure_keeps_destination_absent(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_write(target) as handle:
                handle.write("partial")
                raise RuntimeError("crash")
        assert not target.exists()


class TestTextAndJsonHelpers:
    def test_write_text_atomic(self, tmp_path):
        path = write_text_atomic(tmp_path / "t.txt", "abc\n")
        assert path.read_text() == "abc\n"

    def test_write_json_atomic_is_byte_stable(self, tmp_path):
        a = write_json_atomic(tmp_path / "a.json", {"b": 1, "a": [0.1, 2]})
        b = write_json_atomic(tmp_path / "b.json", {"a": [0.1, 2], "b": 1})
        assert a.read_bytes() == b.read_bytes()  # sorted keys

    def test_json_floats_round_trip(self, tmp_path):
        value = {"x": 0.1 + 0.2}
        path = write_json_atomic(tmp_path / "v.json", value)
        assert json.loads(path.read_text()) == value


class TestChecksums:
    def test_file_checksum_is_content_hash(self, tmp_path):
        one = tmp_path / "one.txt"
        two = tmp_path / "two.txt"
        one.write_text("same")
        two.write_text("same")
        assert file_checksum(one) == file_checksum(two)

    def test_sidecar_format(self, tmp_path):
        target = write_text_atomic(tmp_path / "artifact.json", "{}\n")
        sidecar = write_checksum(target)
        assert sidecar.name == "artifact.json.sha256"
        digest, name = sidecar.read_text().split()
        assert len(digest) == 64 and name == "artifact.json"

    def test_verify_against_sidecar(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        write_checksum(target)
        assert verify_artifact(target) == file_checksum(target)

    def test_verify_detects_tampering(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        write_checksum(target)
        target.write_text("tampered")
        with pytest.raises(ArtifactError, match="mismatch"):
            verify_artifact(target)

    def test_verify_without_sidecar_raises(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        with pytest.raises(ArtifactError, match="sidecar"):
            verify_artifact(target)

    def test_verify_against_explicit_digest(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        digest = file_checksum(target)
        assert verify_artifact(target, expected=digest) == digest
        with pytest.raises(ArtifactError, match="mismatch"):
            verify_artifact(target, expected="0" * 64)


class TestCorruptionTaxonomy:
    """The split between *unverifiable* and *provably corrupt* artifacts.

    The model registry keys its quarantine decision on this hierarchy,
    and the CLI keys exit code 2 on the ``ValueError`` root.
    """

    def test_corruption_error_is_an_artifact_error(self):
        assert issubclass(ArtifactCorruptionError, ArtifactError)
        assert issubclass(ArtifactError, ValueError)

    def test_tampering_raises_the_corruption_subtype(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        write_checksum(target)
        target.write_text("tampered")
        with pytest.raises(ArtifactCorruptionError, match="mismatch"):
            verify_artifact(target)

    def test_unparsable_sidecar_is_corruption(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        sidecar = write_checksum(target)
        sidecar.write_text("not-a-digest\n")
        with pytest.raises(ArtifactCorruptionError, match="unparsable"):
            verify_artifact(target)

    def test_missing_sidecar_is_not_corruption(self, tmp_path):
        # Absence of evidence is weaker than evidence of tampering:
        # a missing sidecar must stay the plain (retry-worthy) error.
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        with pytest.raises(ArtifactError, match="sidecar") as excinfo:
            verify_artifact(target)
        assert not isinstance(excinfo.value, ArtifactCorruptionError)

    def test_explicit_digest_mismatch_is_corruption(self, tmp_path):
        target = write_text_atomic(tmp_path / "a.txt", "payload")
        with pytest.raises(ArtifactCorruptionError):
            verify_artifact(target, expected="0" * 64)


class TestDurability:
    def test_fsync_called_before_rename(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
        )
        write_text_atomic(tmp_path / "d.txt", "durable")
        assert synced  # at least one fsync on the temp handle
