"""Tests for the rolling-coverage monitor and its alarm contract."""

import numpy as np
import pytest

from repro.robust.monitoring import CoverageMonitor, CoverageTransition


class TestCoverageMonitor:
    def test_healthy_stream_never_alarms(self):
        monitor = CoverageMonitor(target_coverage=0.9, window=20, tolerance=0.05)
        # Exactly 90% coverage in every window: at target, never below it.
        covered = ([True] * 9 + [False]) * 50
        monitor.update(covered)
        assert monitor.alarms_ == []
        assert not monitor.in_alarm_

    def test_alarm_fires_on_coverage_collapse(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=20, tolerance=0.05, min_observations=10
        )
        alarm = monitor.update([True] * 10 + [False] * 10)
        assert alarm is not None
        assert alarm.rolling_coverage < 0.85
        assert alarm.threshold == pytest.approx(0.85)
        assert monitor.in_alarm_

    def test_no_alarm_before_min_observations(self):
        monitor = CoverageMonitor(min_observations=50)
        assert monitor.update([False] * 49) is None
        assert monitor.alarms_ == []

    def test_sustained_breach_is_one_alarm(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.05, min_observations=10
        )
        monitor.update([False] * 100)
        assert len(monitor.alarms_) == 1

    def test_rearm_requires_recovery_to_target(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.1, min_observations=10
        )
        monitor.update([False] * 20)          # breach -> alarm 1
        assert len(monitor.alarms_) == 1
        monitor.update([True] * 30)           # full recovery re-arms
        assert not monitor.in_alarm_
        monitor.update([False] * 10)          # second breach -> alarm 2
        assert len(monitor.alarms_) == 2

    def test_alarm_location_is_exact(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.05, min_observations=10
        )
        alarm = monitor.update([True] * 9 + [False] * 3)
        # obs 10: 9/10 covered (no alarm); obs 11: 8/10 -> first breach.
        assert alarm.at_observation == 11

    def test_rolling_coverage_windows(self):
        monitor = CoverageMonitor(window=4)
        monitor.update([False, False, True, True, True, True])
        assert monitor.rolling_coverage() == 1.0
        assert monitor.n_observed == 6

    def test_rolling_coverage_requires_data(self):
        with pytest.raises(RuntimeError, match="no outcomes"):
            CoverageMonitor().rolling_coverage()

    def test_describe_is_readable(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.05, min_observations=10
        )
        alarm = monitor.update([False] * 10)
        assert "coverage alarm" in alarm.describe()
        assert "85.0%" in alarm.describe()

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="target_coverage"):
            CoverageMonitor(target_coverage=1.5)
        with pytest.raises(ValueError, match="window"):
            CoverageMonitor(window=0)
        with pytest.raises(ValueError, match="tolerance"):
            CoverageMonitor(target_coverage=0.5, tolerance=0.6)
        with pytest.raises(ValueError, match="min_observations"):
            CoverageMonitor(min_observations=0)

    def test_update_returns_first_alarm_of_batch(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=5, tolerance=0.05, min_observations=5
        )
        first = monitor.update([False] * 5 + [True] * 20 + [False] * 5)
        assert first is not None
        assert first is monitor.alarms_[0]
        assert len(monitor.alarms_) == 2

    def test_transition_history_pairs_enter_and_exit(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.1, min_observations=10
        )
        monitor.update([False] * 20)   # breach
        monitor.update([True] * 30)    # full recovery
        monitor.update([False] * 10)   # second breach, never recovers
        kinds = [t.kind for t in monitor.transitions_]
        assert kinds == ["enter", "exit", "enter"]
        assert monitor.in_alarm_
        enter, exit_, _ = monitor.transitions_
        assert isinstance(enter, CoverageTransition)
        assert enter.at_observation < exit_.at_observation
        assert enter.rolling_coverage < enter.threshold
        assert exit_.rolling_coverage >= monitor.target_coverage

    def test_transitions_match_alarms(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.05, min_observations=10
        )
        monitor.update([False] * 30)
        # A sustained breach is one alarm and exactly one enter event,
        # located at the same observation.
        enters = [t for t in monitor.transitions_ if t.kind == "enter"]
        assert len(enters) == len(monitor.alarms_) == 1
        assert enters[0].at_observation == monitor.alarms_[0].at_observation

    def test_oscillation_below_target_is_one_transition(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.1, min_observations=10
        )
        monitor.update([False] * 20)
        # Partial recovery (above threshold, below target) must not
        # record an exit: hysteresis keeps the alarm entered.
        monitor.update([True] * 8 + [False] * 2)
        assert [t.kind for t in monitor.transitions_] == ["enter"]
        assert monitor.in_alarm_

    def test_healthy_stream_records_no_transitions(self):
        monitor = CoverageMonitor(target_coverage=0.9, window=20, tolerance=0.05)
        monitor.update(([True] * 9 + [False]) * 50)
        assert monitor.transitions_ == []

    def test_transition_describe_is_readable(self):
        monitor = CoverageMonitor(
            target_coverage=0.9, window=10, tolerance=0.1, min_observations=10
        )
        monitor.update([False] * 20)
        monitor.update([True] * 30)
        entered, exited = monitor.transitions_
        assert "entered alarm state" in entered.describe()
        assert "exited alarm state" in exited.describe()
        assert "80.0%" in entered.describe()  # the hysteresis threshold

    def test_scalar_and_array_updates_agree(self):
        a = CoverageMonitor(window=5, min_observations=3)
        b = CoverageMonitor(window=5, min_observations=3)
        outcomes = [True, False, True, False, False]
        a.update(outcomes)
        for outcome in outcomes:
            b.update(outcome)
        assert a.rolling_coverage() == b.rolling_coverage()
        assert len(a.alarms_) == len(b.alarms_)
