"""Project model: every module of a package, parsed once, cross-linked.

The whole-program pass needs three things the per-file lint engine never
builds: a *module table* keyed by dotted import name (so
``from repro.core.split_cp import split_train_calibration`` resolves to
the defining module), a *function table* keyed by qualified name
(``repro.core.cqr.ConformalizedQuantileRegressor.fit``, nested
functions included), and per-module *import alias maps* (local name ->
absolute dotted target, relative imports resolved against the package).

Files that fail to parse become :class:`EngineError` records instead of
raising: the analysis CLI reports them as engine diagnostics and exits
2, so a broken file can never crash -- or silently skip -- a deep pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.devtools.engine import annotate_parents, classify_role, collect_suppressions

__all__ = [
    "EngineError",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "module_name_for",
    "resolve_dotted",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


@dataclass(frozen=True)
class EngineError:
    """A file the analyzer could not process (reported, never raised)."""

    path: str
    line: int
    message: str


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or method, or nested function) in the project."""

    qualname: str
    module: str
    node: FunctionNode
    parent_class: Optional[str] = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    def params(self) -> List[str]:
        """Positional + keyword parameter names, in signature order."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if self.parent_class is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        return names

    def all_params(self) -> List[str]:
        """Parameter names including ``self``/``cls`` (scope binding)."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ModuleInfo:
    """One parsed module plus the lookup tables rules need."""

    path: str
    name: str
    source: str
    tree: ast.Module
    role: str
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    aliases: Dict[str, str] = field(default_factory=dict)
    module_globals: Dict[str, ast.AST] = field(default_factory=dict)


def module_name_for(path: Union[str, Path]) -> str:
    """Derive the dotted module name from the package layout on disk.

    Walks parent directories upward while they contain ``__init__.py``;
    the chain of package directories plus the file stem is the module
    name (``src/repro/core/cqr.py`` -> ``repro.core.cqr``).  A file
    outside any package is its bare stem.
    """
    path = Path(path).resolve()
    parts: List[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    return ".".join(reversed(parts))


def _collect_aliases(module: str, tree: ast.Module) -> Dict[str, str]:
    """Map local names to absolute dotted targets for one module."""
    package = module.rsplit(".", 1)[0] if "." in module else ""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: level 1 is the containing package,
                # each extra level climbs one more.
                anchor = package.split(".") if package else []
                climb = anchor[: max(0, len(anchor) - (node.level - 1))]
                prefix = ".".join(climb)
                base = f"{prefix}.{node.module}" if node.module else prefix
            else:
                base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _collect_globals(tree: ast.Module) -> Dict[str, ast.AST]:
    """Top-level ``name = value`` bindings (shared-state detection)."""
    bindings: Dict[str, ast.AST] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bindings[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                bindings[stmt.target.id] = stmt.value
    return bindings


class Project:
    """Parsed modules, functions, and import links for one analysis run."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.errors: List[EngineError] = []

    @classmethod
    def load(cls, files: Sequence[str]) -> "Project":
        """Parse every file into the project; parse failures are recorded."""
        project = cls()
        for file_path in sorted(files):
            try:
                source = Path(file_path).read_text(encoding="utf-8")
            except OSError as error:
                project.errors.append(
                    EngineError(path=file_path, line=1, message=str(error))
                )
                continue
            project.add_source(source, file_path)
        return project

    def add_source(
        self, source: str, path: str, name: Optional[str] = None
    ) -> Optional[ModuleInfo]:
        """Parse one source string into the project tables.

        ``name`` overrides the dotted module name; without it the name
        is derived from the package layout on disk (or the bare stem
        for in-memory sources whose path does not exist).
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            self.errors.append(
                EngineError(
                    path=path,
                    line=error.lineno or 1,
                    message=f"file could not be parsed: {error.msg}",
                )
            )
            return None
        annotate_parents(tree)
        if name is None:
            name = (
                module_name_for(path) if Path(path).exists() else Path(path).stem
            )
        info = ModuleInfo(
            path=path,
            name=name,
            source=source,
            tree=tree,
            role=classify_role(path),
            suppressions=collect_suppressions(source),
            aliases=_collect_aliases(name, tree),
            module_globals=_collect_globals(tree),
        )
        self.modules[name] = info
        self.by_path[path] = info
        self._register_functions(info)
        return info

    def _register_functions(self, info: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, parent_class: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{prefix}.{child.name}"
                    self.functions[qualname] = FunctionInfo(
                        qualname=qualname,
                        module=info.name,
                        node=child,
                        parent_class=parent_class,
                    )
                    visit(child, f"{qualname}.<locals>", None)
                elif isinstance(child, ast.ClassDef):
                    visit(child, f"{prefix}.{child.name}", child.name)
                elif isinstance(child, (ast.If, ast.Try, ast.With)):
                    # Conditionally defined module-level functions still
                    # count; nested scoping inside them is rare enough
                    # that the plain prefix is the honest approximation.
                    visit(child, prefix, parent_class)

        visit(info.tree, info.name, None)

    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve a dotted reference in ``module`` to a known qualname.

        ``dotted`` is the local spelling (``split_train_calibration``,
        ``experiments.run_point_grid``); the module's alias map rewrites
        the head, then the function table is consulted.  Returns the
        qualified function name or ``None`` when the reference leaves
        the analyzed project (numpy, stdlib, unresolvable attributes).
        """
        info = self.modules.get(module)
        if info is None or not dotted:
            return None
        head, _, rest = dotted.partition(".")
        target = info.aliases.get(head)
        if target is None:
            # Unimported head: a name defined in this module itself.
            candidate = f"{module}.{dotted}"
            return candidate if candidate in self.functions else None
        full = f"{target}.{rest}" if rest else target
        if full in self.functions:
            return full
        # ``from pkg import mod`` followed by ``mod.fn`` resolves through
        # the module table (covers class methods one level down too).
        return full if full in self.functions else None

    def function_module(self, qualname: str) -> Optional[ModuleInfo]:
        """The module a registered function was defined in."""
        fn = self.functions.get(qualname)
        return self.modules.get(fn.module) if fn else None


def resolve_dotted(info: ModuleInfo, node: ast.AST) -> str:
    """Absolute dotted name of an expression, through the import aliases.

    ``np.random.default_rng`` becomes ``numpy.random.default_rng`` when
    ``np`` aliases numpy (the conventional ``np`` spelling is also
    normalised without a visible import); a bare imported name expands
    to its full target.  Returns ``""`` when the expression is not a
    plain dotted chain.
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return ""
    head = info.aliases.get(current.id, current.id)
    full = ".".join([head] + list(reversed(parts)))
    if full == "np.random" or full.startswith("np.random."):
        full = "numpy" + full[len("np"):]
    return full
