"""Estimator protocol shared by every model in :mod:`repro.models`.

The conformal wrappers in :mod:`repro.core` need to treat heterogeneous
regressors (linear, GP, boosting, neural network) uniformly: re-fit fresh
copies on sub-splits of the data, query point or quantile predictions, and
introspect configuration.  This module provides the minimal scikit-learn
compatible machinery for that:

* :class:`BaseRegressor` -- base class implementing ``get_params`` /
  ``set_params`` by introspecting ``__init__`` signatures,
* :func:`clone` -- build an unfitted copy of an estimator with identical
  hyper-parameters,
* input validation helpers :func:`check_X`, :func:`check_X_y`,
  :func:`check_fitted`.

Nothing in here is specific to silicon data; the module is deliberately a
tiny, dependency-free re-implementation of the scikit-learn estimator
contract so the rest of the library can stay idiomatic.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Dict, Optional, Tuple

import numpy as np

__all__ = [
    "BaseRegressor",
    "NotFittedError",
    "check_X",
    "check_X_y",
    "check_fitted",
    "check_random_state",
    "clone",
]


class NotFittedError(RuntimeError):
    """Raised when ``predict`` is called on an estimator before ``fit``."""


def check_random_state(seed: Any) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    ``Generator`` (returned unchanged).  Mirrors scikit-learn's
    ``check_random_state`` but produces the modern ``Generator`` API.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator, got {type(seed)!r}"
    )


def check_X(X: Any, *, name: str = "X") -> np.ndarray:
    """Validate a 2-D feature matrix and return it as ``float64``.

    Raises ``ValueError`` for wrong dimensionality, empty inputs, or
    non-finite entries.  A 1-D vector is interpreted as a single feature
    column only if explicitly reshaped by the caller -- silently guessing
    between "one sample" and "one feature" causes subtle bugs, so we refuse.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"{name} must be 2-D (n_samples, n_features), got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ValueError(f"{name} must be non-empty, got shape {X.shape}")
    finite = np.isfinite(X)
    if not np.all(finite):
        bad = np.flatnonzero(~finite.all(axis=0))
        shown = ", ".join(str(int(c)) for c in bad[:10])
        if bad.size > 10:
            shown += f", ... ({bad.size} columns total)"
        raise ValueError(
            f"{name} contains NaN or infinite values in column(s) [{shown}]"
        )
    return X


def check_X_y(X: Any, y: Any) -> Tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / target vector pair with matching lengths."""
    X = check_X(X)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} vs {y.shape[0]}"
        )
    if not np.all(np.isfinite(y)):
        raise ValueError("y contains NaN or infinite values")
    return X, y


def check_fitted(estimator: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator`` has ``attribute``."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )


class BaseRegressor:
    """Base class providing the parameter-introspection contract.

    Subclasses must store every constructor argument on ``self`` under the
    same name (the scikit-learn convention) and must not mutate those
    attributes during ``fit``; fitted state uses a trailing underscore
    (``coef_``, ``trees_`` ...).  That discipline is what makes
    :func:`clone` and grid-style experimentation possible.
    """

    @classmethod
    def _param_names(cls) -> Tuple[str, ...]:
        signature = inspect.signature(cls.__init__)
        return tuple(
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind != inspect.Parameter.VAR_KEYWORD
        )

    def get_params(self) -> Dict[str, Any]:
        """Return a dict of constructor parameters and their current values."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params: Any) -> "BaseRegressor":
        """Set constructor parameters; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def fit(self, X: Any, y: Any) -> "BaseRegressor":  # pragma: no cover - abstract
        raise NotImplementedError

    def predict(self, X: Any) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def score(self, X: Any, y: Any) -> float:
        """Coefficient of determination :math:`R^2` on ``(X, y)``."""
        X, y = check_X_y(X, y)
        prediction = self.predict(X)
        residual = float(np.sum((y - prediction) ** 2))
        total = float(np.sum((y - np.mean(y)) ** 2))
        if total == 0.0:
            # Constant target: perfect iff we predicted it exactly.
            return 1.0 if residual == 0.0 else 0.0
        return 1.0 - residual / total

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.get_params().items()))
        return f"{type(self).__name__}({params})"


def clone(estimator: Any, *, quantile: Optional[float] = None) -> Any:
    """Return an unfitted copy of ``estimator`` with the same hyper-parameters.

    Parameters
    ----------
    estimator:
        Any object exposing ``get_params``.  Constructor parameters are
        deep-copied so mutable defaults (e.g. kernel objects) are not shared
        between the clone and the original.
    quantile:
        If given and the estimator accepts a ``quantile`` parameter, override
        it in the clone.  This is the hook the quantile-band regressor uses to
        turn one template model into a (lower, upper) pair.
    """
    if not hasattr(estimator, "get_params"):
        raise TypeError(
            f"cannot clone object of type {type(estimator).__name__}: "
            "it does not expose get_params()"
        )
    params = copy.deepcopy(estimator.get_params())
    if quantile is not None:
        if "quantile" not in params:
            raise ValueError(
                f"{type(estimator).__name__} has no 'quantile' parameter; "
                "cannot retarget it to a quantile objective"
            )
        params["quantile"] = quantile
    return type(estimator)(**params)
