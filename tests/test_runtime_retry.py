"""Tests for deterministic retry policies (repro.runtime.retry)."""

from __future__ import annotations

import pytest

from repro.runtime.retry import (
    Attempt,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    call_with_retry,
    run_attempts,
)


def _no_sleep(_seconds):
    return None


class _FlakyWorker:
    """Fails with ``error`` the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures, error=None, value=42):
        self.n_failures = n_failures
        self.error = error or TransientFault("blip")
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.error
        return self.value


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -0.1},
            {"backoff_factor": 0.5},
            {"backoff_max": -1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_retry_on_must_hold_exception_types(self):
        with pytest.raises(TypeError, match="exception types"):
            RetryPolicy(retry_on=("not-a-type",))


class TestTaxonomy:
    def test_transient_is_retried_by_default(self):
        policy = RetryPolicy()
        assert policy.should_retry(TransientFault("x"))

    def test_plain_exceptions_are_not_retried_by_default(self):
        policy = RetryPolicy()
        assert not policy.should_retry(ValueError("a real bug"))

    def test_permanent_beats_the_allowlist(self):
        # Even a policy that explicitly allowlists PermanentFault must
        # not retry it: the taxonomy wins over the configuration.
        policy = RetryPolicy(retry_on=(PermanentFault, RuntimeError))
        assert not policy.should_retry(PermanentFault("unfixable"))
        assert policy.should_retry(RuntimeError("other"))

    def test_subclasses_of_transient_match(self):
        class Blip(TransientFault):
            """Test-local transient subtype."""

        assert RetryPolicy().should_retry(Blip("x"))


class TestDelaysDeterminism:
    def test_schedule_is_pure_function_of_seed_and_key(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert policy.delays(task_key=3) == policy.delays(task_key=3)

    def test_different_tasks_get_decorrelated_jitter(self):
        policy = RetryPolicy(max_attempts=5, seed=7, jitter=0.5)
        assert policy.delays(task_key=1) != policy.delays(task_key=2)

    def test_zero_jitter_is_plain_exponential(self):
        policy = RetryPolicy(
            max_attempts=4,
            backoff_base=0.1,
            backoff_factor=2.0,
            backoff_max=10.0,
            jitter=0.0,
        )
        assert policy.delays() == pytest.approx((0.1, 0.2, 0.4))

    def test_backoff_max_caps_each_delay(self):
        policy = RetryPolicy(
            max_attempts=5,
            backoff_base=1.0,
            backoff_factor=10.0,
            backoff_max=2.0,
            jitter=0.0,
        )
        assert max(policy.delays()) <= 2.0

    def test_single_attempt_has_no_delays(self):
        assert RetryPolicy(max_attempts=1).delays() == ()


class TestRunAttempts:
    def test_first_try_success(self):
        result = run_attempts(lambda: "ok", policy=RetryPolicy(), sleep=_no_sleep)
        assert result.ok and result.value == "ok" and result.attempts == 1

    def test_transient_fault_recovers(self):
        worker = _FlakyWorker(n_failures=2)
        result = run_attempts(
            worker, policy=RetryPolicy(max_attempts=3), sleep=_no_sleep
        )
        assert result.ok and result.value == 42
        assert result.attempts == 3 and worker.calls == 3

    def test_exhausted_policy_captures_final_error(self):
        worker = _FlakyWorker(n_failures=10)
        result = run_attempts(
            worker, policy=RetryPolicy(max_attempts=3), sleep=_no_sleep
        )
        assert not result.ok
        assert isinstance(result.error, TransientFault)
        assert result.attempts == 3

    def test_permanent_fault_fails_immediately(self):
        worker = _FlakyWorker(n_failures=5, error=PermanentFault("no"))
        result = run_attempts(
            worker, policy=RetryPolicy(max_attempts=4), sleep=_no_sleep
        )
        assert not result.ok and result.attempts == 1 and worker.calls == 1

    def test_no_policy_means_single_attempt(self):
        worker = _FlakyWorker(n_failures=1)
        result = run_attempts(worker, policy=None, sleep=_no_sleep)
        assert not result.ok and worker.calls == 1

    def test_sleeps_follow_the_declared_schedule(self):
        policy = RetryPolicy(
            max_attempts=3, backoff_base=0.25, jitter=0.2, seed=5
        )
        slept = []
        run_attempts(
            _FlakyWorker(n_failures=2),
            policy=policy,
            task_key=9,
            sleep=slept.append,
        )
        assert tuple(slept) == policy.delays(task_key=9)[:2]

    def test_unwrap_reraises_final_error(self):
        attempt = Attempt(value=None, error=ValueError("boom"), attempts=1)
        with pytest.raises(ValueError, match="boom"):
            attempt.unwrap()


class TestCallWithRetry:
    def test_returns_value(self):
        worker = _FlakyWorker(n_failures=1)
        value = call_with_retry(
            worker, policy=RetryPolicy(max_attempts=2), sleep=_no_sleep
        )
        assert value == 42

    def test_raises_final_error_unchanged(self):
        with pytest.raises(ZeroDivisionError):
            call_with_retry(lambda: 1 / 0, policy=RetryPolicy(), sleep=_no_sleep)
