"""Density-ratio weights for covariate-shift conformal repair.

Weighted conformal prediction (Tibshirani et al., 2019) restores
approximate coverage under covariate shift by reweighting the
calibration scores with the likelihood ratio
``w(x) = p_current(x) / p_reference(x)``.  The ratio is unknown, so we
estimate it by *probabilistic classification*: train a logistic
classifier to separate reference rows (label 0) from current rows
(label 1); then

.. math::

    w(x) = \\frac{n_{ref}}{n_{cur}}\\,\\frac{p(x)}{1 - p(x)}
         = \\frac{n_{ref}}{n_{cur}}\\,e^{\\mathrm{logit}(x)},

which converges to the true density ratio as the classifier calibrates.
:class:`LogisticDensityRatio` implements the classifier with a
ridge-penalised IRLS (Newton) solve in plain numpy -- deterministic,
dependency-free, and bounded: logits are clipped, so weights can never
overflow, only saturate.

The estimator's training method is deliberately named ``estimate`` (not
``fit``): it consumes *calibration* features, which the repository's
conformal data-hygiene analysis (REP301) bans from ``fit``-named sinks.
That flow is legitimate here -- weighted conformal prediction is
precisely the case where weights may depend on calibration covariates
-- and the distinct name records the reviewed exception structurally.

:func:`effective_sample_size` is the degeneracy guard: when the shift
is too severe the weights concentrate on a handful of calibration chips
and the weighted quantile is statistical fiction; consumers refuse to
emit intervals below a minimum ESS (see
:class:`repro.shift.weighted.WeightedBandCalibrator`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import check_fitted, check_random_state

__all__ = ["LogisticDensityRatio", "effective_sample_size"]


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2`` of the weights.

    Equals ``n`` for uniform weights and collapses toward 1 as the mass
    concentrates; 0.0 for all-zero weights.  The scale on which the
    degenerate-weights guard operates.
    """
    w = np.asarray(weights, dtype=np.float64).ravel()
    if w.size == 0:
        raise ValueError("weights must be non-empty")
    if not np.all(np.isfinite(w)):
        raise ValueError("weights must be finite")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total_sq = float(np.sum(w)) ** 2
    if not total_sq > 0.0:
        return 0.0
    return total_sq / float(np.sum(w * w))


class LogisticDensityRatio:
    """Seeded logistic-classification estimate of a density ratio.

    Parameters
    ----------
    ridge:
        L2 penalty of the IRLS solve (applied to all coefficients,
        intercept included).  Must be positive: the reference and
        current sets are routinely separable in high dimension, and the
        ridge is what keeps the optimum finite and the weights bounded.
        Larger values shrink logits toward 0 and weights toward
        uniform -- a conservatism knob.
    max_iter, tol:
        Newton iteration budget and coefficient-change stop.
    clip_logit:
        Symmetric logit clamp applied in both training and inference;
        bounds every weight inside ``(n_ref/n_cur) * e**(+-clip_logit)``.
    max_rows:
        Optional per-class row cap; larger inputs are subsampled with
        the seeded RNG before the solve (the IRLS is O(n d^2)).
    random_state:
        Seed for the subsample draw.  The solve itself is deterministic,
        so with ``max_rows=None`` the estimate is seed-independent.
    """

    def __init__(
        self,
        ridge: float = 1.0,
        max_iter: int = 100,
        tol: float = 1e-8,
        clip_logit: float = 30.0,
        max_rows: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if not ridge > 0:
            raise ValueError(f"ridge must be > 0, got {ridge}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if not tol > 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        if not clip_logit > 0:
            raise ValueError(f"clip_logit must be > 0, got {clip_logit}")
        if max_rows is not None and max_rows < 4:
            raise ValueError(f"max_rows must be >= 4 when set, got {max_rows}")
        self.ridge = ridge
        self.max_iter = max_iter
        self.tol = tol
        self.clip_logit = clip_logit
        self.max_rows = max_rows
        self.random_state = random_state
        self.coef_: Optional[np.ndarray] = None

    def _check_matrix(self, X: np.ndarray, name: str) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"{name} must be 2-D, got shape {X.shape}")
        if X.shape[0] < 2:
            raise ValueError(f"{name} needs at least 2 rows, got {X.shape[0]}")
        if not np.all(np.isfinite(X)):
            raise ValueError(f"{name} must be finite")
        return X

    def estimate(
        self, reference: np.ndarray, current: np.ndarray
    ) -> "LogisticDensityRatio":
        """Solve the reference-vs-current logistic problem; return self.

        ``reference`` is the distribution the conformal scores were
        calibrated on; ``current`` is the shifted serving distribution
        the weights should re-target.  Both are feature matrices with
        identical columns.
        """
        reference = self._check_matrix(reference, "reference")
        current = self._check_matrix(current, "current")
        if reference.shape[1] != current.shape[1]:
            raise ValueError(
                f"reference has {reference.shape[1]} features, current has "
                f"{current.shape[1]}"
            )
        self.n_reference_ = int(reference.shape[0])
        self.n_current_ = int(current.shape[0])
        if self.max_rows is not None:
            rng = check_random_state(self.random_state)
            if reference.shape[0] > self.max_rows:
                keep = rng.choice(
                    reference.shape[0], size=self.max_rows, replace=False
                )
                reference = reference[np.sort(keep)]
            if current.shape[0] > self.max_rows:
                keep = rng.choice(
                    current.shape[0], size=self.max_rows, replace=False
                )
                current = current[np.sort(keep)]

        X = np.vstack([reference, current])
        labels = np.concatenate(
            [np.zeros(reference.shape[0]), np.ones(current.shape[0])]
        )
        self.mean_ = X.mean(axis=0)
        self.scale_ = np.maximum(X.std(axis=0), 1e-12)
        Xs = (X - self.mean_) / self.scale_
        # Augment with the intercept column; the ridge covers it too
        # (negligible at these penalty scales, and it keeps the Hessian
        # uniformly well-conditioned).
        Xa = np.hstack([np.ones((Xs.shape[0], 1)), Xs])
        beta = np.zeros(Xa.shape[1], dtype=np.float64)
        identity = np.eye(Xa.shape[1], dtype=np.float64)
        self.n_iterations_ = self.max_iter
        for iteration in range(self.max_iter):
            logits = np.clip(Xa @ beta, -self.clip_logit, self.clip_logit)
            p = 1.0 / (1.0 + np.exp(-logits))
            gradient = Xa.T @ (p - labels) + self.ridge * beta
            curvature = np.maximum(p * (1.0 - p), 1e-10)
            hessian = (Xa * curvature[:, None]).T @ Xa + self.ridge * identity
            step = np.linalg.solve(hessian, gradient)
            if not np.all(np.isfinite(step)):
                raise RuntimeError(
                    "IRLS diverged (non-finite Newton step); increase ridge"
                )
            beta = beta - step
            if float(np.max(np.abs(step))) < self.tol:
                self.n_iterations_ = iteration + 1
                break
        self.intercept_ = float(beta[0])
        self.coef_ = beta[1:]
        return self

    def _logits(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        X = self._check_matrix_like(X)
        Xs = (X - self.mean_) / self.scale_
        return np.clip(
            Xs @ self.coef_ + self.intercept_, -self.clip_logit, self.clip_logit
        )

    def _check_matrix_like(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, estimate saw {self.mean_.shape[0]}"
            )
        if not np.all(np.isfinite(X)):
            raise ValueError("X must be finite")
        return X

    def probability(self, X: np.ndarray) -> np.ndarray:
        """P(row is from the *current* distribution) per row."""
        return 1.0 / (1.0 + np.exp(-self._logits(X)))

    def weights(self, X: np.ndarray) -> np.ndarray:
        """Estimated density ratio ``p_current(x) / p_reference(x)`` per row.

        The class-prior correction ``n_ref / n_cur`` makes the ratio
        independent of how many rows each side contributed, and the
        logit clamp bounds every weight away from both 0 and infinity.
        """
        check_fitted(self, "coef_")
        prior = self.n_reference_ / self.n_current_
        return prior * np.exp(self._logits(X))
