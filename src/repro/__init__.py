"""repro -- reliable Vmin interval prediction via CQR and on-chip monitors.

A from-scratch reproduction of "Reliable Interval Prediction of Minimum
Operating Voltage Based on On-Chip Monitors via Conformalized Quantile
Regression" (Yin, Wang, Chen, He, Li -- DATE 2024), including every
substrate the paper depends on:

* :mod:`repro.core` -- split conformal prediction, CQR, and extensions
  (CV+/Jackknife+, Mondrian, adaptive conformal),
* :mod:`repro.models` -- the five point/quantile regressors of the paper
  (linear, Gaussian process, XGBoost-style and CatBoost-style boosting,
  MLP) built on numpy/scipy only,
* :mod:`repro.features` -- CFS feature selection and preprocessing,
* :mod:`repro.silicon` -- a synthetic 5 nm automotive dataset generator
  replacing the paper's proprietary 156-chip lot,
* :mod:`repro.flow` -- the Fig.-1 prediction flow and interval-based
  production screening,
* :mod:`repro.eval` -- the 4-fold-CV evaluation protocol and the
  experiment registry behind every reproduced table/figure,
* :mod:`repro.robust` -- fault injection, graceful degradation, and
  coverage-drift monitoring for the deployed serving flow,
* :mod:`repro.runtime` -- the resilient execution runtime: deterministic
  retries, watchdog timeouts, checkpoint/resume journals, and atomic
  artifact writes backing the experiment grids.

Quickstart::

    from repro import SiliconDataset, VminPredictionFlow

    dataset = SiliconDataset.generate(seed=0)
    X, names = dataset.features(hours=0)
    y = dataset.target(temperature_c=25.0, hours=0)

    flow = VminPredictionFlow(alpha=0.1, random_state=0)
    flow.fit(X[:120], y[:120], feature_names=names)
    intervals = flow.predict_interval(X[120:])
    print(intervals.coverage(y[120:]), intervals.mean_width)
"""

from repro.core import (
    AdaptiveConformalPredictor,
    ConformalizedQuantileRegressor,
    CVPlusRegressor,
    JackknifePlusRegressor,
    MondrianConformalRegressor,
    PredictionIntervals,
    SplitConformalRegressor,
)
from repro.eval import FeatureSet, KFold
from repro.flow import SpecScreeningPolicy, VminPredictionFlow
from repro.models import (
    DeepEnsembleRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    MLPRegressor,
    ObliviousBoostingRegressor,
    QuantileBandRegressor,
    QuantileLinearRegression,
)
from repro.robust import (
    DegradationPolicy,
    DegradationStatus,
    DegradedPrediction,
    FaultCampaign,
    RobustVminFlow,
)
from repro.runtime import (
    PermanentFault,
    RetryPolicy,
    RunJournal,
    TaskTimeout,
    TransientFault,
)
from repro.silicon import SiliconDataset

__version__ = "1.0.0"

__all__ = [
    "AdaptiveConformalPredictor",
    "CVPlusRegressor",
    "ConformalizedQuantileRegressor",
    "DeepEnsembleRegressor",
    "DegradationPolicy",
    "DegradationStatus",
    "DegradedPrediction",
    "FaultCampaign",
    "FeatureSet",
    "GaussianProcessRegressor",
    "GradientBoostingRegressor",
    "JackknifePlusRegressor",
    "KFold",
    "LinearRegression",
    "MLPRegressor",
    "MondrianConformalRegressor",
    "ObliviousBoostingRegressor",
    "PermanentFault",
    "PredictionIntervals",
    "QuantileBandRegressor",
    "QuantileLinearRegression",
    "RetryPolicy",
    "RobustVminFlow",
    "RunJournal",
    "SiliconDataset",
    "SpecScreeningPolicy",
    "SplitConformalRegressor",
    "TaskTimeout",
    "TransientFault",
    "VminPredictionFlow",
    "__version__",
]
