"""Synthetic 5 nm automotive silicon substrate.

The paper's experiments run on a proprietary NXP dataset: 156 automotive
chips stressed for 1008 hours of accelerated Dhrystone burn-in, with SCAN
:math:`V_{min}`, ~1800 parametric ATE tests, 168 ring-oscillator-delay
(ROD) monitors, and 10 in-situ critical-path-delay (CPD) monitors
(Table II).  That data cannot be released, so this package generates a
physics-inspired synthetic population with the same shape and the same
statistical structure:

* correlated process variation (global Vth / channel-length shifts,
  within-die systematic gradients, per-sensor local mismatch)
  -- :mod:`repro.silicon.process`,
* power-law BTI/HCI aging with chip-specific activity
  -- :mod:`repro.silicon.aging`,
* a small latent-defect subpopulation producing early-life Vmin outliers
  -- :mod:`repro.silicon.defects`,
* monitor response models for the ROD and CPD banks
  -- :mod:`repro.silicon.monitors`,
* parametric test families (IDDQ, leakage, trip-IDD, Vdd trips, dead
  channels) -- :mod:`repro.silicon.parametric`,
* the ground-truth SCAN Vmin model with temperature-dependent,
  heteroscedastic behaviour -- :mod:`repro.silicon.vmin`,
* the assembled Table-II-shaped dataset -- :mod:`repro.silicon.dataset`,
* a burn-in / ATE flow simulator producing per-read-point measurement
  logs -- :mod:`repro.silicon.ate`,
* multi-product / multi-fab fleet generation with process-corner
  offsets and calendar-time corner drift -- :mod:`repro.silicon.fleet`
  (the shifted-data source for the :mod:`repro.shift` defense layer).

Everything is seeded and deterministic: ``SiliconDataset.generate(seed)``
reproduces bit-identical data.
"""

from repro.silicon.aging import AgingModel
from repro.silicon.ate import BurnInFlowSimulator, MeasurementRecord
from repro.silicon.chip import Chip, ChipPopulation
from repro.silicon.constants import (
    CPD_TEMPERATURE_C,
    MIN_SPEC_V,
    N_CHIPS_DEFAULT,
    N_CPD_SENSORS,
    N_PARAMETRIC_TESTS,
    N_ROD_SENSORS,
    READ_POINTS_HOURS,
    ROD_TEMPERATURE_C,
    TEMPERATURES_C,
)
from repro.silicon.dataset import SiliconDataset
from repro.silicon.defects import DefectModel
from repro.silicon.fleet import (
    CornerDrift,
    CorneredProcessModel,
    FabProfile,
    FleetGenerator,
    FleetLot,
    ProcessCorner,
    ProductSpec,
)
from repro.silicon.monitors import CPDSensorBank, RODSensorBank
from repro.silicon.parametric import ParametricTestBank
from repro.silicon.process import ProcessSample, ProcessVariationModel
from repro.silicon.vmin import ScanVminModel
from repro.silicon.wafer import WaferLayout, WaferModel, WaferProvenance

__all__ = [
    "AgingModel",
    "BurnInFlowSimulator",
    "CPD_TEMPERATURE_C",
    "CPDSensorBank",
    "Chip",
    "ChipPopulation",
    "CornerDrift",
    "CorneredProcessModel",
    "DefectModel",
    "FabProfile",
    "FleetGenerator",
    "FleetLot",
    "MIN_SPEC_V",
    "MeasurementRecord",
    "N_CHIPS_DEFAULT",
    "N_CPD_SENSORS",
    "N_PARAMETRIC_TESTS",
    "N_ROD_SENSORS",
    "ParametricTestBank",
    "ProcessCorner",
    "ProcessSample",
    "ProcessVariationModel",
    "ProductSpec",
    "READ_POINTS_HOURS",
    "ROD_TEMPERATURE_C",
    "RODSensorBank",
    "ScanVminModel",
    "SiliconDataset",
    "TEMPERATURES_C",
    "WaferLayout",
    "WaferModel",
    "WaferProvenance",
]
