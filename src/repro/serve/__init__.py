"""Fault-tolerant batch serving for calibrated Vmin intervals.

The production shell around the paper's pipeline -- what actually runs
against a test floor once :class:`~repro.robust.flow.RobustVminFlow`
has been fitted.  Four layers, each usable on its own:

* :mod:`repro.serve.registry` -- a versioned model registry on the
  artifact runtime: atomic publication with SHA-256 sidecars, verified
  loads (a bundle is never unpickled unverified), quarantine of corrupt
  versions, and an atomically swapped ``LATEST`` pointer for
  zero-downtime hot-swaps;
* :mod:`repro.serve.health` -- the audited readiness state machine
  (``STARTING -> READY <-> DEGRADED -> DRAINING``), the fallback-chain
  vocabulary (:class:`FallbackLevel`), and the closed
  :class:`ReasonCode` set every downgrade must be recorded with;
* :mod:`repro.serve.service` -- :class:`VminServingService`: admission
  control with typed :class:`Overloaded` rejection, per-request
  deadlines and deterministic retries, snapshot-per-request hot-swaps
  that drop zero in-flight work, and the label feedback loop driving
  ``READY <-> DEGRADED``;
* :mod:`repro.serve.recalibration` -- :class:`DriftRecalibrator`,
  which makes the flow's in-memory Gibbs-Candès recalibration durable
  by republishing the adapted flow as a new registry version;
* :mod:`repro.serve.shiftguard` -- :class:`ShiftGuard`: the
  :mod:`repro.shift` sentinels (exchangeability martingale, covariate
  PSI detector, per-wafer-zone Mondrian coverage monitors) re-armed on
  every installed model and driven from the label feedback loop, with
  new alarms audited as ``EXCHANGEABILITY_ALARM`` /
  ``COVARIATE_SHIFT`` downgrades and
  :meth:`VminServingService.repair_shift` as the weighted-conformal
  recovery (or refusal) path;
* :mod:`repro.serve.compiled` -- the decision-table kernel adapter:
  :func:`ensure_compiled` upgrades loaded bundles onto the batch-at-once
  inference kernels of :mod:`repro.models.tables`, and
  :func:`compiled_summary` records the kernels in every published
  manifest.

The soak harness (:func:`repro.eval.stress.run_serving_campaign`)
exercises all four under injected artifact corruption, worker crashes,
and covariate drift; ``python -m repro serve`` is the CLI entry point.
"""

from repro.serve.compiled import compiled_summary, ensure_compiled
from repro.serve.health import (
    FallbackLevel,
    HealthStateMachine,
    IllegalTransition,
    ReasonCode,
    ServiceState,
    StateTransition,
)
from repro.serve.recalibration import DriftRecalibrator, RecalibrationEvent
from repro.serve.registry import (
    MANIFEST_SCHEMA_VERSION,
    ModelRegistry,
    ModelVersion,
    RegistryError,
)
from repro.serve.service import (
    Overloaded,
    RejectedRequest,
    ServingConfig,
    ServingResult,
    VminServingService,
)
from repro.serve.shiftguard import ShiftGuard, ShiftVerdict

__all__ = [
    "DriftRecalibrator",
    "FallbackLevel",
    "HealthStateMachine",
    "IllegalTransition",
    "MANIFEST_SCHEMA_VERSION",
    "ModelRegistry",
    "ModelVersion",
    "Overloaded",
    "ReasonCode",
    "RecalibrationEvent",
    "RegistryError",
    "RejectedRequest",
    "ServiceState",
    "ServingConfig",
    "ServingResult",
    "ShiftGuard",
    "ShiftVerdict",
    "StateTransition",
    "VminServingService",
    "compiled_summary",
    "ensure_compiled",
]
