"""Versioned, checksum-verified model registry on the artifact runtime.

A serving deployment must never load a model it cannot prove intact:
the conformal guarantee is only as good as the calibration state inside
the bundle, and a torn or bit-rotted pickle fails *silently* -- it may
unpickle into a model that serves plausible-looking but uncalibrated
intervals.  :class:`ModelRegistry` therefore treats every published
model as a checksummed artifact:

* **publish** pickles a fitted flow atomically
  (:func:`~repro.runtime.artifacts.atomic_path`), writes a SHA-256
  sidecar and a JSON manifest (also checksummed), and only then swaps
  the ``LATEST`` pointer -- itself an atomic rename, so readers observe
  either the old complete version or the new complete version,
* **load** runs :func:`~repro.runtime.artifacts.verify_artifact` on the
  bundle *before* unpickling; a digest mismatch raises
  :class:`~repro.runtime.artifacts.ArtifactCorruptionError` and moves
  the whole version directory into ``quarantine/`` so no later reader
  can trust it by accident,
* **last_known_good** walks versions newest-to-oldest and returns the
  first one whose bundle still verifies -- the rollback target of the
  serving fallback chain.

Version names are monotonically numbered (``v0001``, ``v0002``, ...);
publishing never mutates an existing version, so hot-swapping a serving
process is a pointer read away and zero-downtime by construction.

Layout under ``root``::

    versions/v0001/bundle.pkl          the pickled fitted flow
    versions/v0001/bundle.pkl.sha256   its checksum sidecar
    versions/v0001/manifest.json       metadata (reason, parent, ...)
    versions/v0001/manifest.json.sha256
    LATEST                             text file naming the live version
    quarantine/v0001/...               corrupt versions, moved wholesale
"""

from __future__ import annotations

import json
import pickle
import re
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.runtime.artifacts import (
    ArtifactCorruptionError,
    ArtifactError,
    atomic_path,
    verify_artifact,
    write_checksum,
    write_json_atomic,
    write_text_atomic,
)
from repro.serve.compiled import compiled_summary, ensure_compiled

__all__ = ["MANIFEST_SCHEMA_VERSION", "ModelRegistry", "ModelVersion", "RegistryError"]

MANIFEST_SCHEMA_VERSION = 1

_BUNDLE_NAME = "bundle.pkl"
_MANIFEST_NAME = "manifest.json"
_LATEST_NAME = "LATEST"
_VERSION_PATTERN = re.compile(r"^v(\d{4,})$")


class RegistryError(ArtifactError):
    """A registry operation failed (no versions, unknown name, bad root).

    Subclasses :class:`~repro.runtime.artifacts.ArtifactError` (and so
    ``ValueError``), keeping the CLI's exit-2 mapping and existing
    ``except`` clauses working.
    """


@dataclass(frozen=True)
class ModelVersion:
    """One published registry version: identity, location, manifest.

    Attributes
    ----------
    name:
        The version name (``v0001`` style), unique within the registry.
    number:
        The monotonic integer behind the name.
    path:
        Directory holding ``bundle.pkl`` / ``manifest.json`` and their
        sidecars.
    manifest:
        The parsed manifest: ``schema_version``, ``version``,
        ``reason``, ``parent`` and free-form ``metadata``.
    """

    name: str
    number: int
    path: Path
    manifest: Dict[str, Any]

    @property
    def reason(self) -> str:
        """Why this version was published (e.g. ``recalibrated``)."""
        return str(self.manifest.get("reason", ""))

    @property
    def parent(self) -> Optional[str]:
        """The version this one was derived from, if recorded."""
        parent = self.manifest.get("parent")
        return str(parent) if parent is not None else None


def _version_name(number: int) -> str:
    return f"v{number:04d}"


class ModelRegistry:
    """Atomic publish / verified load / quarantine for serving bundles.

    Parameters
    ----------
    root:
        Registry root directory; created (with ``versions/`` and
        ``quarantine/``) if absent.  One registry root belongs to one
        model lineage -- publish different products to different roots.

    Notes
    -----
    All operations are protected by an in-process lock, and every
    on-disk mutation is an atomic rename, so a reader in another
    process never observes a torn publish or swap.  Concurrent
    *publishers* in different processes are not arbitrated -- the
    deployment pattern is single-publisher, many-readers.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise RegistryError(f"registry root {self.root} is not a directory")
        self.versions_dir = self.root / "versions"
        self.quarantine_dir = self.root / "quarantine"
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- queries ---------------------------------------------------------------
    def versions(self) -> List[str]:
        """All published (non-quarantined) version names, oldest first."""
        found = []
        for entry in self.versions_dir.iterdir():
            match = _VERSION_PATTERN.match(entry.name)
            if match and entry.is_dir():
                found.append((int(match.group(1)), entry.name))
        return [name for _, name in sorted(found)]

    def latest(self) -> Optional[str]:
        """The version the ``LATEST`` pointer names, or ``None``.

        A pointer naming a missing (e.g. quarantined) version is
        treated as absent -- callers fall back to
        :meth:`last_known_good`.
        """
        pointer = self.root / _LATEST_NAME
        if not pointer.exists():
            return None
        name = pointer.read_text(encoding="utf-8").strip()
        if not name or not (self.versions_dir / name).is_dir():
            return None
        return name

    def describe(self, name: str) -> ModelVersion:
        """The :class:`ModelVersion` record for ``name`` (manifest parsed).

        Raises :class:`RegistryError` for unknown names and
        :class:`~repro.runtime.artifacts.ArtifactCorruptionError` for an
        unreadable manifest.
        """
        path = self.versions_dir / name
        match = _VERSION_PATTERN.match(name)
        if match is None or not path.is_dir():
            raise RegistryError(
                f"unknown registry version {name!r} under {self.root} "
                f"(published: {self.versions() or 'none'})"
            )
        manifest_path = path / _MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ArtifactCorruptionError(
                f"{manifest_path}: unreadable manifest ({error})"
            ) from error
        return ModelVersion(
            name=name, number=int(match.group(1)), path=path, manifest=manifest
        )

    # -- publish ---------------------------------------------------------------
    def publish(
        self,
        model: Any,
        reason: str = "published",
        parent: Optional[str] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> ModelVersion:
        """Publish a fitted model as the next version and swap ``LATEST``.

        The bundle and manifest are written atomically with checksum
        sidecars *before* the ``LATEST`` pointer moves, so a crash at
        any instant leaves either the previous version live or the new
        version live -- never a half-published one.  Returns the new
        :class:`ModelVersion`.

        Parameters
        ----------
        model:
            The fitted flow to serialise (anything picklable; in this
            repository a :class:`~repro.robust.flow.RobustVminFlow`).
        reason:
            Audit string recorded in the manifest (``published``,
            ``recalibrated``, ...).
        parent:
            Name of the version this one derives from (recalibration
            lineage); validated against the registry when given.
        metadata:
            Free-form JSON-serialisable extras for the manifest.

        Notes
        -----
        Publishing compiles the model's boosting ensembles into
        decision-table kernels first
        (:func:`~repro.serve.compiled.ensure_compiled`), so the pickled
        bundle is self-contained: a service that loads it scores
        batch-at-once without recompiling.  The manifest's ``compiled``
        key records the kernels (one summary per ensemble; empty for
        models without any), making the scoring path auditable without
        unpickling the bundle.
        """
        with self._lock:
            if parent is not None and not (self.versions_dir / parent).is_dir():
                raise RegistryError(
                    f"parent version {parent!r} is not in the registry"
                )
            existing = self.versions()
            number = (
                int(_VERSION_PATTERN.match(existing[-1]).group(1)) + 1
                if existing
                else 1
            )
            name = _version_name(number)
            path = self.versions_dir / name
            path.mkdir(parents=False, exist_ok=False)

            ensure_compiled(model)
            bundle_path = path / _BUNDLE_NAME
            with atomic_path(bundle_path) as tmp:
                tmp.write_bytes(pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL))
            write_checksum(bundle_path)

            manifest = {
                "schema_version": MANIFEST_SCHEMA_VERSION,
                "version": name,
                "reason": str(reason),
                "parent": parent,
                "published_at": time.time(),
                "metadata": dict(metadata) if metadata else {},
                "compiled": compiled_summary(model),
            }
            manifest_path = write_json_atomic(path / _MANIFEST_NAME, manifest)
            write_checksum(manifest_path)

            write_text_atomic(self.root / _LATEST_NAME, name + "\n")
            return ModelVersion(
                name=name, number=number, path=path, manifest=manifest
            )

    # -- verified load ---------------------------------------------------------
    def load(self, name: Optional[str] = None) -> Tuple[Any, ModelVersion]:
        """Load a version, verifying its checksum before unpickling.

        ``name=None`` loads :meth:`latest`.  On digest mismatch the
        version is quarantined (moved wholesale under ``quarantine/``)
        and :class:`~repro.runtime.artifacts.ArtifactCorruptionError`
        propagates -- an unverified bundle is never deserialised, let
        alone served.  Returns ``(model, ModelVersion)``.
        """
        with self._lock:
            if name is None:
                name = self.latest()
                if name is None:
                    raise RegistryError(
                        f"registry {self.root} has no live LATEST version"
                    )
            record = self.describe(name)
            bundle_path = record.path / _BUNDLE_NAME
            try:
                verify_artifact(bundle_path)
            except ArtifactCorruptionError:
                self.quarantine(name)
                raise
            except ArtifactError as error:
                # Missing bundle or sidecar: the version is unusable but
                # not provably tampered -- quarantine it too, with the
                # original error chained for the audit trail.
                self.quarantine(name)
                raise ArtifactCorruptionError(
                    f"{bundle_path}: unverifiable bundle ({error})"
                ) from error
            try:
                model = pickle.loads(bundle_path.read_bytes())
            except Exception as error:
                # Checksum passed but unpickling failed: the *published*
                # bytes are bad (publisher bug), quarantine equally.
                self.quarantine(name)
                raise ArtifactCorruptionError(
                    f"{bundle_path}: verified bundle failed to deserialise "
                    f"({error})"
                ) from error
            return model, record

    def last_known_good(
        self, exclude: Tuple[str, ...] = ()
    ) -> Optional[str]:
        """Newest version whose bundle still verifies, or ``None``.

        ``exclude`` names versions to skip (e.g. the one that just
        failed to load).  Verification here is read-only: a corrupt
        version encountered during the walk is *not* quarantined, so
        probing for a rollback target never mutates the registry.
        """
        for name in reversed(self.versions()):
            if name in exclude:
                continue
            try:
                verify_artifact(self.versions_dir / name / _BUNDLE_NAME)
            except ArtifactError:
                continue
            return name
        return None

    # -- quarantine ------------------------------------------------------------
    def quarantine(self, name: str) -> Path:
        """Move a version directory into ``quarantine/`` and fix ``LATEST``.

        If the pointer named the quarantined version it is repointed at
        the newest remaining intact version, or removed when none is
        left -- a registry never advertises a version it just declared
        corrupt.  Returns the quarantine destination.
        """
        with self._lock:
            source = self.versions_dir / name
            if not source.is_dir():
                raise RegistryError(f"cannot quarantine unknown version {name!r}")
            destination = self.quarantine_dir / name
            suffix = 1
            while destination.exists():
                destination = self.quarantine_dir / f"{name}.{suffix}"
                suffix += 1
            source.rename(destination)
            pointer = self.root / _LATEST_NAME
            if pointer.exists():
                live = pointer.read_text(encoding="utf-8").strip()
                if live == name:
                    replacement = self.last_known_good()
                    if replacement is not None:
                        write_text_atomic(pointer, replacement + "\n")
                    else:
                        pointer.unlink()
            return destination

    def quarantined(self) -> List[str]:
        """Names currently sitting in ``quarantine/`` (sorted)."""
        return sorted(
            entry.name for entry in self.quarantine_dir.iterdir() if entry.is_dir()
        )
