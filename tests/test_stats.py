"""Tests for fold-paired statistical comparisons."""

import numpy as np
import pytest

from repro.eval.stats import (
    PairedComparison,
    paired_fold_difference,
    paired_permutation_test,
    rank_models,
)


class TestPermutationTest:
    def test_identical_scores_not_significant(self):
        scores = [0.8, 0.7, 0.9, 0.75]
        assert paired_permutation_test(scores, scores) == pytest.approx(1.0)

    def test_consistent_direction_small_p(self):
        a = [0.9, 0.91, 0.89, 0.92, 0.90, 0.91, 0.9, 0.92]
        b = [0.7, 0.72, 0.71, 0.69, 0.70, 0.73, 0.68, 0.71]
        # All 8 differences positive: p = 2/2^8 (both all-plus and
        # all-minus assignments are as extreme).
        assert paired_permutation_test(a, b) == pytest.approx(2 / 256)

    def test_four_folds_floor(self):
        """With 4 folds the smallest achievable p is 2/16: the paper's
        protocol can never show p < 0.05 -- worth knowing."""
        a = [0.9, 0.9, 0.9, 0.9]
        b = [0.1, 0.1, 0.1, 0.1]
        assert paired_permutation_test(a, b) == pytest.approx(2 / 16)

    def test_symmetric_noise_large_p(self, rng):
        a = rng.normal(size=12)
        b = a + rng.normal(scale=1.0, size=12) * np.where(rng.random(12) < 0.5, 1, -1)
        assert paired_permutation_test(a, b) > 0.05

    def test_large_n_uses_sampling(self, rng):
        a = rng.normal(size=30) + 2.0
        b = rng.normal(size=30)
        assert paired_permutation_test(a, b) < 0.01

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0, 2.0], [1.0])


class TestPairedDifference:
    def test_mean_and_ci_bracket(self, rng):
        a = rng.normal(loc=1.0, scale=0.1, size=10)
        b = rng.normal(loc=0.0, scale=0.1, size=10)
        result = paired_fold_difference(a, b, seed=1)
        assert isinstance(result, PairedComparison)
        assert result.ci_low <= result.mean_difference <= result.ci_high
        assert result.mean_difference == pytest.approx(1.0, abs=0.2)
        assert result.significant

    def test_no_difference_not_significant(self, rng):
        a = rng.normal(size=8)
        noise = rng.normal(scale=0.5, size=8)
        result = paired_fold_difference(a, a + noise - noise.mean(), seed=2)
        assert not result.significant or abs(result.mean_difference) < 0.2

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError, match="confidence"):
            paired_fold_difference([1.0, 2.0], [0.5, 1.0], confidence=1.5)


class TestRankModels:
    def test_clear_ordering(self):
        ranks = rank_models(
            {
                "best": [0.9, 0.8, 0.95],
                "mid": [0.7, 0.6, 0.9],
                "worst": [0.1, 0.2, 0.3],
            }
        )
        assert ranks["best"] == 1.0
        assert ranks["mid"] == 2.0
        assert ranks["worst"] == 3.0

    def test_ties_share_average_rank(self):
        ranks = rank_models({"a": [1.0], "b": [1.0]})
        assert ranks["a"] == ranks["b"] == 1.5

    def test_lower_is_better_mode(self):
        ranks = rank_models(
            {"small": [1.0, 2.0], "large": [10.0, 20.0]},
            higher_is_better=False,
        )
        assert ranks["small"] == 1.0

    def test_rejects_ragged(self):
        with pytest.raises(ValueError, match="scenario counts"):
            rank_models({"a": [1.0, 2.0], "b": [1.0]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            rank_models({})
