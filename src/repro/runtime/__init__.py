"""Resilient execution runtime: retries, timeouts, checkpoints, atomic I/O.

The conformal guarantees of the paper (Romano et al., CQR) are only as
good as the execution layer that computes them: a coverage table with a
silently missing cell, a half-written artifact, or a grid lost to one
hung worker is not a reproduction.  ``repro.runtime`` is the layer
underneath :mod:`repro.perf.parallel` and the experiment grids that
makes execution itself reliable, in four pieces:

* :mod:`repro.runtime.retry` -- the :class:`TransientFault` /
  :class:`PermanentFault` taxonomy and deterministic
  :class:`RetryPolicy` backoff schedules (seeded jitter; two runs sleep
  identically and compute identically),
* :mod:`repro.runtime.watchdog` -- cooperative deadlines for thread
  workers, hard-killed subprocess execution for stuck process workers,
* :mod:`repro.runtime.checkpoint` -- the append-only JSONL
  :class:`RunJournal` keyed by configuration fingerprints, giving
  experiment grids SIGKILL-safe resume with bit-identical results,
* :mod:`repro.runtime.artifacts` -- write-temp-then-rename atomic file
  helpers with SHA-256 checksum sidecars, used by every artifact writer
  in the repository.

See ``docs/RUNTIME.md`` for policies, journal schema, and resume
semantics.
"""

from repro.runtime.artifacts import (
    ArtifactCorruptionError,
    ArtifactError,
    atomic_path,
    atomic_write,
    file_checksum,
    verify_artifact,
    write_checksum,
    write_json_atomic,
    write_text_atomic,
)
from repro.runtime.checkpoint import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RunJournal,
    canonical_json,
    cell_fingerprint,
)
from repro.runtime.retry import (
    Attempt,
    PermanentFault,
    RetryPolicy,
    TransientFault,
    call_with_retry,
    run_attempts,
)
from repro.runtime.watchdog import (
    Deadline,
    TaskTimeout,
    WorkerCrash,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_time,
    run_in_subprocess,
    run_with_deadline,
)

__all__ = [
    "Attempt",
    "ArtifactCorruptionError",
    "ArtifactError",
    "Deadline",
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "PermanentFault",
    "RetryPolicy",
    "RunJournal",
    "TaskTimeout",
    "TransientFault",
    "WorkerCrash",
    "atomic_path",
    "atomic_write",
    "call_with_retry",
    "canonical_json",
    "cell_fingerprint",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "file_checksum",
    "remaining_time",
    "run_attempts",
    "run_in_subprocess",
    "run_with_deadline",
    "verify_artifact",
    "write_checksum",
    "write_json_atomic",
    "write_text_atomic",
]
