"""The end-to-end Vmin prediction flow of the paper's Fig. 1.

* :mod:`repro.flow.scenarios` -- which features are available when:
  production test (time 0) vs simulated in-field read points,
* :mod:`repro.flow.pipeline` -- :class:`VminPredictionFlow`, the
  select -> scale -> fit -> conformalize -> predict-interval pipeline a
  product team would deploy,
* :mod:`repro.flow.screening` -- interval-based outlier / specification
  screening (the paper's stated production use case, Section V),
* :mod:`repro.flow.binning` -- guard-banded Vmin binning for power saving
  (the use case of the paper's reference [4]).
"""

from repro.flow.binning import BinningOutcome, VminBinningPolicy, optimize_guard_band
from repro.flow.pipeline import VminPredictionFlow
from repro.flow.scenarios import (
    PredictionScenario,
    build_forecast_scenario,
    build_scenario,
)
from repro.flow.screening import ScreeningDecision, SpecScreeningPolicy

__all__ = [
    "BinningOutcome",
    "PredictionScenario",
    "ScreeningDecision",
    "SpecScreeningPolicy",
    "VminBinningPolicy",
    "VminPredictionFlow",
    "build_forecast_scenario",
    "build_scenario",
    "optimize_guard_band",
]
