"""Tests for the wafer-hierarchy overlay."""

import numpy as np
import pytest

from repro.silicon.wafer import WaferLayout, WaferModel


class TestWaferLayout:
    def test_all_dies_inside_usable_radius(self):
        layout = WaferLayout(dies_per_row=14, usable_fraction=0.95)
        assert np.all(layout.radius() <= 0.95 + 1e-12)

    def test_corner_cells_excluded(self):
        layout = WaferLayout(dies_per_row=10)
        # A full square grid would have 100 dies; the circle cuts corners.
        assert layout.dies_per_wafer < 100
        assert layout.dies_per_wafer > 50

    def test_serpentine_order(self):
        layout = WaferLayout(dies_per_row=6, usable_fraction=1.0)
        coords = layout.coordinates()
        # The two central rows are fully populated; row index 2 (even)
        # runs left->right and row index 3 (odd) right->left.
        ys = np.unique(coords[:, 1])
        row_even = coords[coords[:, 1] == ys[2]]
        row_odd = coords[coords[:, 1] == ys[3]]
        assert np.all(np.diff(row_even[:, 0]) > 0)
        assert np.all(np.diff(row_odd[:, 0]) < 0)

    def test_zone_rings_ordered_by_radius(self):
        layout = WaferLayout(dies_per_row=12)
        zones = layout.zone(n_rings=3)
        radius = layout.radius()
        assert set(zones) == {0, 1, 2}
        assert radius[zones == 0].max() <= radius[zones == 2].min() + 1e-12

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            WaferLayout(dies_per_row=1)
        with pytest.raises(ValueError):
            WaferLayout(usable_fraction=0.0)


class TestWaferModel:
    def test_chips_fill_wafers_in_order(self):
        model = WaferModel(WaferLayout(dies_per_row=6))
        per_wafer = model.layout.dies_per_wafer
        provenance = model.sample(per_wafer + 5, 0)
        assert provenance.wafer_id.max() == 1
        assert np.sum(provenance.wafer_id == 0) == per_wafer
        assert np.sum(provenance.wafer_id == 1) == 5

    def test_overlay_shapes(self):
        provenance = WaferModel().sample(156, 0)
        assert provenance.vth_overlay_v.shape == (156,)
        assert provenance.die_xy.shape == (156, 2)

    def test_deterministic_given_seed(self):
        a = WaferModel().sample(60, 42)
        b = WaferModel().sample(60, 42)
        np.testing.assert_array_equal(a.vth_overlay_v, b.vth_overlay_v)

    def test_radial_signature_grows_with_radius(self):
        # A single big wafer, no wafer-to-wafer terms, fixed sign.
        model = WaferModel(
            WaferLayout(dies_per_row=20),
            wafer_sigma_v=0.0,
            radial_amplitude_v=0.01,
            radial_sigma_v=0.0,
        )
        provenance = model.sample(200, 3)
        radius = np.hypot(provenance.die_xy[:, 0], provenance.die_xy[:, 1])
        overlay = np.abs(provenance.vth_overlay_v)
        inner = overlay[radius < 0.3].mean()
        outer = overlay[radius > 0.7].mean()
        assert outer > inner

    def test_wafer_offsets_shared_within_wafer(self):
        model = WaferModel(
            WaferLayout(dies_per_row=6),
            wafer_sigma_v=0.01,
            radial_amplitude_v=0.0,
            radial_sigma_v=0.0,
        )
        per_wafer = model.layout.dies_per_wafer
        provenance = model.sample(per_wafer * 3, 7)
        for wafer in range(3):
            values = provenance.vth_overlay_v[provenance.wafer_id == wafer]
            assert np.allclose(values, values[0])

    def test_zone_labels_per_chip(self):
        model = WaferModel()
        provenance = model.sample(140, 0)
        zones = provenance.zone(model.layout, n_rings=3)
        assert zones.shape == (140,)
        assert set(zones) <= {0, 1, 2}

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            WaferModel(wafer_sigma_v=-1.0)
        with pytest.raises(ValueError):
            WaferModel().sample(0, 0)
