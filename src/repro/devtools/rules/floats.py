"""REP102 -- no ``==`` / ``!=`` between computed floating-point values.

Two floating-point expressions that are mathematically equal are not
reliably bit-equal: ``(a + b) - b == a`` fails for garden-variety
inputs, and a quantile crossing check written with ``==`` will pass or
fail depending on BLAS build and summation order.  For computed values
use a tolerance (``math.isclose`` / ``np.isclose``) or restructure the
comparison.

The rule is deliberately conservative -- static analysis cannot know
every type, so it only flags comparisons where one side *provably*
looks like a computed float:

* arithmetic involving a float literal, or any true-division /
  power expression (``x / y``, ``x ** 0.5``),
* calls to float-producing functions (``mean``, ``std``, ``sqrt``,
  ``np.quantile`` ...),
* a non-zero float literal compared against such an expression.

The zero-guard allowlist: comparing *anything* against literal zero
(``std == 0.0``) stays legal, because exact-zero checks against
degenerate denominators are a correct and common numerical idiom.
Plain name-vs-name or attribute-vs-literal comparisons (``self.nu ==
0.5`` dispatch on a user-set parameter) are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule, dotted_name

__all__ = ["FloatEqualityRule"]

_FLOAT_CALLS = frozenset(
    {
        "mean",
        "nanmean",
        "std",
        "nanstd",
        "var",
        "median",
        "average",
        "quantile",
        "nanquantile",
        "percentile",
        "sqrt",
        "exp",
        "expm1",
        "log",
        "log10",
        "log1p",
        "log2",
        "norm",
        "dot",
        "trapz",
        "interp",
        "hypot",
        "float",
    }
)


def _is_zero_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and float(node.value) == 0.0
    )


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_computed_float(node: ast.AST) -> bool:
    """Heuristic: does this expression provably produce a computed float?"""
    if isinstance(node, ast.UnaryOp):
        return _is_computed_float(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Div, ast.Pow)):
            return True
        return (
            _is_float_literal(node.left)
            or _is_float_literal(node.right)
            or _is_computed_float(node.left)
            or _is_computed_float(node.right)
        )
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if not dotted:
            return False
        return dotted.split(".")[-1] in _FLOAT_CALLS
    return False


class FloatEqualityRule(Rule):
    """Forbid exact equality between computed floating-point expressions."""

    rule_id = "REP102"
    name = "no-float-equality"
    summary = "no == / != on computed float expressions (zero guards allowed)"
    rationale = (
        "bitwise float equality depends on summation order and BLAS build; "
        "computed values need isclose or a restructured comparison"
    )
    scopes = frozenset({"src"})

    def visit_Compare(
        self, node: ast.Compare, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Flag ``==``/``!=`` pairs where one side is a computed float."""
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if _is_zero_literal(left) or _is_zero_literal(right):
                continue  # the zero-guard allowlist
            computed_left = _is_computed_float(left)
            computed_right = _is_computed_float(right)
            if not (computed_left or computed_right):
                continue
            symbol = "==" if isinstance(op, ast.Eq) else "!="
            yield self.diagnostic(
                node,
                context,
                f"exact '{symbol}' on a computed float expression; use "
                "math.isclose/np.isclose or compare against an explicit "
                "tolerance (exact zero guards like 'std == 0.0' are exempt)",
            )
