"""Regression trees fitted to per-sample gradients and Hessians.

This is the shared tree machinery underneath both boosting models:

* :class:`GradientTree` grows a depth-wise binary tree by greedy search
  maximising the XGBoost split gain

  .. math::

      \\mathrm{gain} = \\tfrac12\\Big[\\frac{G_L^2}{H_L+\\lambda}
          + \\frac{G_R^2}{H_R+\\lambda}
          - \\frac{(G_L+G_R)^2}{H_L+H_R+\\lambda}\\Big] - \\gamma,

  with Newton-optimal leaf values :math:`w = -G/(H+\\lambda)`.  Two split
  finders are available: :meth:`GradientTree.fit_gradients` scans every
  candidate boundary exactly with one batched prefix-sum pass over all
  features at once, and :meth:`GradientTree.fit_binned` scans a pre-binned
  integer code matrix (see :mod:`repro.models.binning`) with one histogram
  + cumulative-sum pass per node.  Both finders break gain ties
  deterministically (lowest feature position, then lowest boundary), so a
  fit is bit-identical across runs and across ``n_jobs`` settings.

* :class:`DecisionTreeRegressor` is the stand-alone estimator: fitting a
  single gradient tree to the squared loss from a zero base score makes
  every leaf value the mean of its targets, i.e. an ordinary CART
  regression tree.

Trees are stored as flat parallel arrays (feature, threshold, children,
value) so prediction is an iterative descent without Python recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.models.base import BaseRegressor, check_fitted, check_X, check_X_y

__all__ = ["DecisionTreeRegressor", "GradientTree", "TreeGrowthParams"]

_LEAF = -1


@dataclass
class TreeGrowthParams:
    """Growth limits and regularisation for :class:`GradientTree`.

    Attributes
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum number of samples on each side of a split.
    min_child_weight:
        Minimum Hessian sum on each side of a split (XGBoost semantics;
        with unit Hessians this equals a sample count).
    reg_lambda:
        L2 regularisation on leaf values (XGBoost ``lambda``).
    gamma:
        Minimum gain required to keep a split (XGBoost ``gamma``).
    """

    max_depth: int = 6
    min_samples_leaf: int = 1
    min_child_weight: float = 1.0
    reg_lambda: float = 1.0
    gamma: float = 0.0

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ValueError(f"max_depth must be >= 0, got {self.max_depth}")
        if self.min_samples_leaf < 1:
            raise ValueError(
                f"min_samples_leaf must be >= 1, got {self.min_samples_leaf}"
            )
        if self.min_child_weight < 0:
            raise ValueError(
                f"min_child_weight must be >= 0, got {self.min_child_weight}"
            )
        if self.reg_lambda < 0:
            raise ValueError(f"reg_lambda must be >= 0, got {self.reg_lambda}")
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")


@dataclass
class _NodeBuffers:
    """Flat array representation filled while growing (internal)."""

    feature: List[int] = field(default_factory=list)
    threshold: List[float] = field(default_factory=list)
    left: List[int] = field(default_factory=list)
    right: List[int] = field(default_factory=list)
    value: List[float] = field(default_factory=list)

    def new_node(self) -> int:
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        self.value.append(0.0)
        return len(self.feature) - 1


def _best_split_for_feature(
    values: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    params: TreeGrowthParams,
) -> Tuple[float, float]:
    """Return (gain, threshold) of the best split on one feature column.

    Legacy *reference* finder: sort by feature value, take prefix sums of
    gradients/Hessians, and evaluate the gain at every boundary between
    distinct values.  Returns ``(-inf, nan)`` when no admissible split
    exists.  Production growth goes through the batched
    :func:`_best_split_all_features` scan instead; this single-column
    version is kept as the ground truth the equivalence tests compare
    against.
    """
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    grad_prefix = np.cumsum(gradients[order])
    hess_prefix = np.cumsum(hessians[order])
    total_grad = grad_prefix[-1]
    total_hess = hess_prefix[-1]
    n = values.shape[0]

    # Candidate split after position i keeps samples [0..i] on the left.
    positions = np.arange(n - 1)
    distinct = sorted_values[positions] < sorted_values[positions + 1]
    left_count = positions + 1
    right_count = n - left_count
    admissible = (
        distinct
        & (left_count >= params.min_samples_leaf)
        & (right_count >= params.min_samples_leaf)
    )
    if not np.any(admissible):
        return -np.inf, float("nan")

    g_left = grad_prefix[positions]
    h_left = hess_prefix[positions]
    g_right = total_grad - g_left
    h_right = total_hess - h_left
    admissible &= (h_left >= params.min_child_weight) & (
        h_right >= params.min_child_weight
    )
    if not np.any(admissible):
        return -np.inf, float("nan")

    lam = params.reg_lambda
    gain = 0.5 * (
        g_left**2 / (h_left + lam)
        + g_right**2 / (h_right + lam)
        - total_grad**2 / (total_hess + lam)
    )
    gain = np.where(admissible, gain, -np.inf)
    best = int(np.argmax(gain))
    threshold = 0.5 * (sorted_values[best] + sorted_values[best + 1])
    return float(gain[best]), threshold


def _node_view(
    columns: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    rows: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialise one node's data slice exactly once.

    Every split finder works on the arrays returned here; routing all
    node-level slicing through a single helper is what guarantees the
    ``X[rows]``/``gradients[rows]``/``hessians[rows]`` copies are made
    once per node rather than once per candidate feature (the historical
    hot-loop bug), and gives the regression test a seam to count them.
    """
    return columns[rows], gradients[rows], hessians[rows]


def _best_split_all_features(
    node_columns: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    params: TreeGrowthParams,
) -> Tuple[float, int, float]:
    """Best (gain, feature position, threshold) over all columns at once.

    Batched exact greedy: one ``argsort`` + ``take_along_axis`` +
    ``cumsum`` pass over the whole ``(n_node, n_features)`` block replaces
    the per-feature Python loop.  Column-wise the arithmetic is the exact
    sequence :func:`_best_split_for_feature` performs, so gains are
    bit-identical to the reference finder; the flat feature-major
    ``argmax`` reproduces its deterministic tie-breaking (lowest feature
    position wins, then the lowest boundary).  Returns
    ``(-inf, -1, nan)`` when no admissible split exists.
    """
    n, n_features = node_columns.shape
    if n < 2:
        return -np.inf, -1, float("nan")
    order = np.argsort(node_columns, axis=0, kind="stable")
    sorted_values = np.take_along_axis(node_columns, order, axis=0)
    grad_prefix = np.cumsum(gradients[order], axis=0)
    hess_prefix = np.cumsum(hessians[order], axis=0)
    total_grad = grad_prefix[-1]
    total_hess = hess_prefix[-1]

    # Candidate split after row i keeps sorted rows [0..i] on the left.
    distinct = sorted_values[:-1] < sorted_values[1:]
    left_count = np.arange(1, n)[:, None]
    right_count = n - left_count
    admissible = (
        distinct
        & (left_count >= params.min_samples_leaf)
        & (right_count >= params.min_samples_leaf)
    )
    g_left = grad_prefix[:-1]
    h_left = hess_prefix[:-1]
    g_right = total_grad[None, :] - g_left
    h_right = total_hess[None, :] - h_left
    admissible &= (h_left >= params.min_child_weight) & (
        h_right >= params.min_child_weight
    )
    if not np.any(admissible):
        return -np.inf, -1, float("nan")

    lam = params.reg_lambda
    gain = 0.5 * (
        g_left**2 / (h_left + lam)
        + g_right**2 / (h_right + lam)
        - total_grad[None, :] ** 2 / (total_hess[None, :] + lam)
    )
    gain = np.where(admissible, gain, -np.inf)
    # Feature-major flat argmax == "first feature with strictly greater
    # gain" of the legacy loop, so ties break identically.
    flat = int(np.argmax(gain.T))
    feature_pos, boundary = divmod(flat, n - 1)
    threshold = 0.5 * (
        sorted_values[boundary, feature_pos]
        + sorted_values[boundary + 1, feature_pos]
    )
    return float(gain[boundary, feature_pos]), int(feature_pos), float(threshold)


def _best_split_binned(
    node_codes: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    n_bins: int,
    params: TreeGrowthParams,
) -> Tuple[float, int, int]:
    """Best (gain, feature position, bin) on pre-binned integer codes.

    One histogram accumulation (shared with
    :func:`repro.models.binning.histogram_sums`) followed by one
    cumulative-sum scan across bins evaluates every (feature, boundary)
    candidate of the node simultaneously.  Splitting at bin ``b`` sends
    codes ``<= b`` left.  Ties break on the flat feature-major ``argmax``
    (lowest feature position, then lowest bin), matching the exact
    finders.  Returns ``(-inf, -1, -1)`` when no admissible split exists.
    """
    from repro.models.binning import histogram_cells, histogram_sums

    n, n_features = node_codes.shape
    if n < 2 or n_bins < 2:
        return -np.inf, -1, -1
    one_leaf = np.zeros(n, dtype=np.int64)
    all_columns = np.arange(n_features)
    cell = histogram_cells(node_codes, one_leaf, 1, n_bins, all_columns)
    grad_cells = histogram_sums(cell, gradients, 1, n_bins, n_features)[:, 0, :]
    hess_cells = histogram_sums(cell, hessians, 1, n_bins, n_features)[:, 0, :]
    count_cells = histogram_sums(cell, np.ones(n), 1, n_bins, n_features)[:, 0, :]

    g_left = np.cumsum(grad_cells, axis=1)[:, :-1]
    h_left = np.cumsum(hess_cells, axis=1)[:, :-1]
    count_left = np.cumsum(count_cells, axis=1)[:, :-1]
    total_grad = grad_cells.sum(axis=1, keepdims=True)
    total_hess = hess_cells.sum(axis=1, keepdims=True)
    count_right = n - count_left
    g_right = total_grad - g_left
    h_right = total_hess - h_left

    admissible = (
        (count_left >= params.min_samples_leaf)
        & (count_right >= params.min_samples_leaf)
        & (h_left >= params.min_child_weight)
        & (h_right >= params.min_child_weight)
    )
    if not np.any(admissible):
        return -np.inf, -1, -1

    lam = params.reg_lambda
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = 0.5 * (
            g_left**2 / (h_left + lam)
            + g_right**2 / (h_right + lam)
            - total_grad**2 / (total_hess + lam)
        )
    gain = np.where(admissible, gain, -np.inf)
    flat = int(np.argmax(gain))
    feature_pos, bin_index = divmod(flat, n_bins - 1)
    return float(gain[feature_pos, bin_index]), int(feature_pos), int(bin_index)


class GradientTree:
    """A single Newton-boosting tree over (gradient, Hessian) statistics."""

    def __init__(self, params: Optional[TreeGrowthParams] = None) -> None:
        self.params = params or TreeGrowthParams()
        self.feature_: Optional[np.ndarray] = None
        self.threshold_: Optional[np.ndarray] = None
        self.left_: Optional[np.ndarray] = None
        self.right_: Optional[np.ndarray] = None
        self.value_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None

    # -- growing ----------------------------------------------------------
    def _grow(
        self,
        n_samples: int,
        gradients: np.ndarray,
        hessians: np.ndarray,
        find_split: Callable[
            [np.ndarray, np.ndarray, np.ndarray],
            Tuple[float, int, float, np.ndarray],
        ],
    ) -> None:
        """Depth-first growth skeleton shared by both split finders.

        ``find_split(node_columns, node_gradients, node_hessians)`` must
        return ``(gain, global_feature, threshold, goes_left)``; a
        non-positive-past-``gamma`` gain or feature ``-1`` terminates the
        node as a leaf.  Node data is materialised via :func:`_node_view`
        exactly once per node.
        """
        buffers = _NodeBuffers()
        root = buffers.new_node()
        # Work stack of (node_id, row_indices, depth); iterative to avoid
        # recursion limits on deep trees.
        stack = [(root, np.arange(n_samples), 0)]
        lam = self.params.reg_lambda
        columns = self._columns
        while stack:
            node_id, rows, depth = stack.pop()
            node_columns, node_grad, node_hess = _node_view(
                columns, gradients, hessians, rows
            )
            grad_sum = float(node_grad.sum())
            hess_sum = float(node_hess.sum())
            buffers.value[node_id] = -grad_sum / (hess_sum + lam)

            if depth >= self.params.max_depth or rows.size < 2 * self.params.min_samples_leaf:
                continue

            gain, feature, threshold, goes_left = find_split(
                node_columns, node_grad, node_hess
            )
            if feature == _LEAF or gain <= self.params.gamma:
                continue

            left_id = buffers.new_node()
            right_id = buffers.new_node()
            buffers.feature[node_id] = feature
            buffers.threshold[node_id] = threshold
            buffers.left[node_id] = left_id
            buffers.right[node_id] = right_id
            stack.append((left_id, rows[goes_left], depth + 1))
            stack.append((right_id, rows[~goes_left], depth + 1))

        self.feature_ = np.asarray(buffers.feature, dtype=np.int64)
        self.threshold_ = np.asarray(buffers.threshold, dtype=np.float64)
        self.left_ = np.asarray(buffers.left, dtype=np.int64)
        self.right_ = np.asarray(buffers.right, dtype=np.int64)
        self.value_ = np.asarray(buffers.value, dtype=np.float64)

    def fit_gradients(
        self,
        X: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: Optional[np.ndarray] = None,
    ) -> "GradientTree":
        """Grow the tree on ``X`` against per-sample gradients/Hessians.

        Exact greedy search: every node scans all candidate boundaries of
        all candidate features in one batched prefix-sum pass
        (:func:`_best_split_all_features`), which is bit-identical to the
        historical per-feature loop but slices the node's rows once
        instead of once per feature.  ``feature_indices`` restricts split
        search to a column subset (used by the boosting layer's
        ``colsample`` option); leaf values are always Newton steps
        :math:`-G/(H+\\lambda)`.
        """
        X = np.asarray(X, dtype=np.float64)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        if gradients.shape != (X.shape[0],) or hessians.shape != (X.shape[0],):
            raise ValueError("gradients/hessians must be 1-D with len(X) entries")
        if feature_indices is None:
            feature_indices = np.arange(X.shape[1])
        feature_indices = np.asarray(feature_indices, dtype=np.int64)
        # Restrict to the candidate columns once per fit; per-node work
        # then only ever touches the (n_node, n_candidates) block.
        self._columns = X if feature_indices.size == X.shape[1] and bool(
            np.all(feature_indices == np.arange(X.shape[1]))
        ) else np.ascontiguousarray(X[:, feature_indices])
        params = self.params

        def find_split(node_columns, node_grad, node_hess):
            gain, feature_pos, threshold = _best_split_all_features(
                node_columns, node_grad, node_hess, params
            )
            if feature_pos < 0:
                return gain, _LEAF, threshold, np.empty(0, dtype=bool)
            goes_left = node_columns[:, feature_pos] <= threshold
            return gain, int(feature_indices[feature_pos]), threshold, goes_left

        self._grow(X.shape[0], gradients, hessians, find_split)
        del self._columns
        self.n_features_in_ = int(X.shape[1])
        return self

    def fit_binned(
        self,
        binned: np.ndarray,
        binner,
        gradients: np.ndarray,
        hessians: np.ndarray,
        feature_indices: Optional[np.ndarray] = None,
    ) -> "GradientTree":
        """Grow the tree on a pre-binned integer code matrix.

        ``binned`` holds bin codes from ``binner.transform`` (computed
        once per boosting run and sliced per node here); ``binner`` is the
        fitted :class:`~repro.models.binning.FeatureBinner` that maps
        chosen bin boundaries back to raw-unit thresholds, so the fitted
        tree predicts directly on raw feature matrices.  Split search is
        one histogram + cumulative-sum scan per node over all candidate
        features (:func:`_best_split_binned`); with ``max_bins`` at least
        the number of distinct values per feature it is exactly
        equivalent to :meth:`fit_gradients`.
        """
        binned = np.asarray(binned)
        gradients = np.asarray(gradients, dtype=np.float64)
        hessians = np.asarray(hessians, dtype=np.float64)
        if binned.ndim != 2:
            raise ValueError(f"binned must be 2-D, got shape {binned.shape}")
        if gradients.shape != (binned.shape[0],) or hessians.shape != (
            binned.shape[0],
        ):
            raise ValueError(
                "gradients/hessians must be 1-D with len(binned) entries"
            )
        if feature_indices is None:
            feature_indices = np.arange(binned.shape[1])
        feature_indices = np.asarray(feature_indices, dtype=np.int64)
        self._columns = binned if feature_indices.size == binned.shape[1] and bool(
            np.all(feature_indices == np.arange(binned.shape[1]))
        ) else np.ascontiguousarray(binned[:, feature_indices])
        n_bins = binner.n_bins
        params = self.params

        def find_split(node_codes, node_grad, node_hess):
            gain, feature_pos, bin_index = _best_split_binned(
                node_codes, node_grad, node_hess, n_bins, params
            )
            if feature_pos < 0:
                return gain, _LEAF, float("nan"), np.empty(0, dtype=bool)
            feature = int(feature_indices[feature_pos])
            threshold = binner.threshold(feature, bin_index)
            goes_left = node_codes[:, feature_pos] <= bin_index
            return gain, feature, threshold, goes_left

        self._grow(binned.shape[0], gradients, hessians, find_split)
        del self._columns
        self.n_features_in_ = int(binned.shape[1])
        return self

    # -- prediction --------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf value for every row of ``X``.

        ``X`` is compared in float64 against the stored float64
        thresholds regardless of its input dtype, and its width is
        validated against the fitted feature count: extra columns used
        to score silently while missing ones raised a bare
        ``IndexError`` mid-walk.  Trees unpickled from bundles that
        predate the recorded width skip the check (``n_features_in_``
        absent) rather than refusing to predict.
        """
        if self.feature_ is None:
            raise RuntimeError("GradientTree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n_expected = getattr(self, "n_features_in_", None)
        if n_expected is not None and X.shape[1] != n_expected:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fitted with "
                f"{n_expected}"
            )
        node_ids = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[node_ids] != _LEAF
        while np.any(active):
            current = node_ids[active]
            feature = self.feature_[current]
            threshold = self.threshold_[current]
            rows = np.flatnonzero(active)
            goes_left = X[rows, feature] <= threshold
            node_ids[rows[goes_left]] = self.left_[current[goes_left]]
            node_ids[rows[~goes_left]] = self.right_[current[~goes_left]]
            active = self.feature_[node_ids] != _LEAF
        return self.value_[node_ids]

    @property
    def n_nodes(self) -> int:
        return 0 if self.feature_ is None else int(self.feature_.size)

    @property
    def n_leaves(self) -> int:
        if self.feature_ is None:
            return 0
        return int(np.sum(self.feature_ == _LEAF))

    def feature_importances(self, n_features: int) -> np.ndarray:
        """Split counts per feature (unnormalised)."""
        counts = np.zeros(n_features)
        if self.feature_ is not None:
            for feature in self.feature_:
                if feature != _LEAF:
                    counts[feature] += 1.0
        return counts


class DecisionTreeRegressor(BaseRegressor):
    """CART-style regression tree minimising squared error.

    Implemented as a single :class:`GradientTree` on squared-loss statistics
    (gradient ``−y``, Hessian ``1`` from a zero base score) with
    ``reg_lambda = 0``, which makes each leaf predict the mean target of its
    samples -- exactly CART with variance-reduction splits.

    ``splitter="exact"`` (default) scans every boundary between distinct
    values; ``splitter="hist"`` pre-bins each column into at most
    ``max_bins`` quantile bins and scans bin boundaries instead -- far
    faster on wide or long data, and exactly equivalent whenever columns
    have fewer than ``max_bins`` distinct values.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 1,
        min_gain: float = 0.0,
        splitter: str = "exact",
        max_bins: int = 32,
    ) -> None:
        if splitter not in ("exact", "hist"):
            raise ValueError(
                f"splitter must be 'exact' or 'hist', got {splitter!r}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self.splitter = splitter
        self.max_bins = max_bins
        self.tree_: Optional[GradientTree] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        params = TreeGrowthParams(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            min_child_weight=0.0,
            reg_lambda=0.0,
            gamma=self.min_gain,
        )
        tree = GradientTree(params)
        if self.splitter == "hist":
            from repro.models.binning import shared_binned_dataset

            dataset = shared_binned_dataset(X, self.max_bins)
            tree.fit_binned(dataset.codes, dataset.binner, -y, np.ones_like(y))
        else:
            tree.fit_gradients(X, -y, np.ones_like(y))
        self.tree_ = tree
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "tree_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return self.tree_.predict(X)

    @property
    def feature_importances_(self) -> np.ndarray:
        check_fitted(self, "tree_")
        counts = self.tree_.feature_importances(self.n_features_in_)
        total = counts.sum()
        return counts / total if total > 0 else counts
