"""Table IV -- average interval length per feature set and on-chip gain.

Regenerates the paper's Table IV: the Fig.-3 CQR-CatBoost interval
lengths averaged over all stress read points, per temperature, for the
three feature configurations, plus the "on-chip monitor gain" row:

.. math::

    \\mathrm{gain} = 1 - \\frac{\\text{len(on-chip + parametric)}}
                             {\\text{len(parametric only)}}.

The paper reports ~21 % average gain; the expected *shape* here is a
clearly positive gain at every temperature, with on-chip-only also
beating parametric-only.
"""

from __future__ import annotations

import numpy as np
from conftest import FEATURE_SETS, publish

from repro.eval.reporting import format_table


def _render(fig3_grid, bench_scope) -> str:
    temperatures, read_points = bench_scope
    averages = {}
    for label, _ in FEATURE_SETS:
        per_temp = [
            float(
                np.mean([fig3_grid[(label, t, h)] for h in read_points])
            )
            for t in temperatures
        ]
        averages[label] = per_temp + [float(np.mean(per_temp))]

    headers = ["Feature type"] + [f"{t:g}C" for t in temperatures] + ["Average"]
    rows = [[label] + values for label, values in averages.items()]
    gain = [
        100.0 * (1.0 - combined / parametric)
        for combined, parametric in zip(
            averages["On-chip and Parametric"], averages["Parametric"]
        )
    ]
    rows.append(["On-chip monitor gain (%)"] + gain)
    return format_table(
        headers,
        rows,
        title=(
            "Table IV | CQR CatBoost avg interval length (mV) across read "
            f"points {list(read_points)}"
        ),
    )


def test_table4_monitor_gain(benchmark, fig3_grid, bench_scope):
    text = benchmark.pedantic(
        _render, args=(fig3_grid, bench_scope), rounds=1, iterations=1
    )
    publish("table4_monitor_gain", text)
