"""Reaching definitions and taint propagation over the function CFG.

Two classic forward may-analyses share the worklist here:

* :func:`reaching_definitions` -- which ``(name, site)`` definitions can
  reach each block entry.  Used by engine tests to pin down the CFG
  semantics (branch joins, loop back edges) and by rules that need
  "where was this name last assigned".
* :class:`TaintAnalysis` -- labelled taint: the abstract state maps
  variable names to the *set of source labels* that may have flowed
  into them.  Labels survive through assignments, tuple unpacking,
  augmented assignment, ``for`` targets, conservative call
  pass-through, and keyword arguments, so a rule asking "does a
  calibration array reach this ``fit`` call" gets back *which* source
  it was and where it entered.

Both analyses only track plain variable names.  Attribute and
subscript stores (``self.x = ...``, ``d[k] = ...``) are deliberately
out of scope -- tracking them soundly needs alias analysis, and the
rules built on top are calibrated for name-level precision.
"""

from __future__ import annotations

import ast
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.devtools.analysis.cfg import BasicBlock, ControlFlowGraph

__all__ = [
    "DefinitionSite",
    "TaintAnalysis",
    "TaintState",
    "assigned_names",
    "reaching_definitions",
]

Label = Hashable
TaintState = Dict[str, FrozenSet[Label]]
DefinitionSite = Tuple[str, int, int]  # (name, block id, statement index)

# Builtins whose result carries no information flow worth tracking.
_SANITIZERS = frozenset(
    {"len", "bool", "isinstance", "issubclass", "type", "id", "hash", "repr"}
)


def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by one assignment target (nested tuples too)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    # Attribute / Subscript stores bind no tracked name.


def assigned_names(stmt: ast.stmt) -> List[str]:
    """Variable names a statement (re)binds, compound headers included."""
    names: List[str] = []
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.extend(_target_names(target))
    elif isinstance(stmt, ast.AugAssign):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.extend(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.extend(_target_names(item.optional_vars))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        names.append(stmt.name)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name == "*":
                continue
            names.append(alias.asname or alias.name.split(".")[0])
    return names


def reaching_definitions(
    cfg: ControlFlowGraph,
) -> Dict[int, Set[DefinitionSite]]:
    """Definition sites reaching each block *entry* (classic RD fixpoint)."""
    gen: Dict[int, Dict[str, DefinitionSite]] = {}
    for block in cfg.blocks:
        last: Dict[str, DefinitionSite] = {}
        for index, stmt in enumerate(block.statements):
            for name in assigned_names(stmt):
                last[name] = (name, block.id, index)
        gen[block.id] = last

    entries: Dict[int, Set[DefinitionSite]] = {b.id: set() for b in cfg.blocks}
    predecessors: Dict[int, List[BasicBlock]] = {
        b.id: cfg.predecessors(b) for b in cfg.blocks
    }
    changed = True
    while changed:
        changed = False
        for block in cfg.blocks:
            incoming: Set[DefinitionSite] = set()
            for pred in predecessors[block.id]:
                killed = set(gen[pred.id])
                incoming |= {
                    site
                    for site in entries[pred.id]
                    if site[0] not in killed
                }
                incoming |= set(gen[pred.id].values())
            if incoming - entries[block.id]:
                entries[block.id] |= incoming
                changed = True
    return entries


def _merge(into: TaintState, other: TaintState) -> bool:
    """Union-merge ``other`` into ``into``; return whether it grew."""
    grew = False
    for name, labels in other.items():
        current = into.get(name, frozenset())
        union = current | labels
        if union != current:
            into[name] = union
            grew = True
    return grew


class TaintAnalysis:
    """Labelled forward taint over one function CFG.

    Parameters
    ----------
    cfg:
        The function's control-flow graph.
    expr_sources:
        ``expr_sources(expr) -> iterable of labels`` -- intrinsic taint of
        one expression node (e.g. "this name matches ``X_cal``", "this is
        a ``time.time()`` call").  Checked on every sub-expression.
    call_result_positions:
        ``call_result_positions(call) -> (labels, positions) | None`` --
        seam calls whose *tuple result* is tainted only at the given
        positions (``train, cal = split(...)`` taints only ``cal``).
        ``None`` means "not a seam".
    initial:
        Taint present at function entry (parameter sources).

    Call results are conservatively tainted by their tainted arguments
    (keyword arguments included) unless the callee is a known
    information-free builtin (``len``, ``isinstance``...).
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        expr_sources: Callable[[ast.expr], Iterable[Label]],
        call_result_positions: Optional[
            Callable[[ast.Call], Optional[Tuple[Iterable[Label], Iterable[int]]]]
        ] = None,
        initial: Optional[TaintState] = None,
    ) -> None:
        self.cfg = cfg
        self._expr_sources = expr_sources
        self._seams = call_result_positions
        self._initial: TaintState = dict(initial or {})
        self._entry_states: Dict[int, TaintState] = {}

    # -- expression-level taint -------------------------------------------------

    def expr_labels(self, expr: Optional[ast.expr], state: TaintState) -> FrozenSet[Label]:
        """All labels that may flow out of ``expr`` under ``state``."""
        if expr is None:
            return frozenset()
        labels: Set[Label] = set(self._expr_sources(expr))
        if isinstance(expr, ast.Name):
            labels |= state.get(expr.id, frozenset())
        elif isinstance(expr, ast.Call):
            func_name = _call_name(expr)
            if func_name not in _SANITIZERS:
                for arg in expr.args:
                    labels |= self.expr_labels(arg, state)
                for keyword in expr.keywords:
                    labels |= self.expr_labels(keyword.value, state)
                # The callee expression itself (method receiver).
                if isinstance(expr.func, ast.Attribute):
                    labels |= self.expr_labels(expr.func.value, state)
        elif isinstance(expr, (ast.Lambda, ast.FunctionDef)):
            pass  # closures are analyzed as their own functions
        else:
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    labels |= self.expr_labels(child, state)
                elif isinstance(child, ast.comprehension):
                    labels |= self.expr_labels(child.iter, state)
        return frozenset(labels)

    # -- statement transfer -----------------------------------------------------

    def transfer(self, stmt: ast.stmt, state: TaintState) -> TaintState:
        """Apply one statement to a copy of ``state`` and return it."""
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, state)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign([stmt.target], stmt.value, state)
        elif isinstance(stmt, ast.AugAssign):
            labels = self.expr_labels(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                existing = state.get(stmt.target.id, frozenset())
                state[stmt.target.id] = existing | labels
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            labels = self.expr_labels(stmt.iter, state)
            for name in _target_names(stmt.target):
                state[name] = labels
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    labels = self.expr_labels(item.context_expr, state)
                    for name in _target_names(item.optional_vars):
                        state[name] = labels
        return state

    def _assign(
        self, targets: List[ast.expr], value: ast.expr, state: TaintState
    ) -> None:
        seam = self._seams(value) if self._seams and isinstance(value, ast.Call) else None
        for target in targets:
            if (
                seam is not None
                and isinstance(target, (ast.Tuple, ast.List))
                and all(isinstance(e, ast.Name) for e in target.elts)
            ):
                labels, positions = seam
                label_set, position_set = frozenset(labels), set(positions)
                for index, element in enumerate(target.elts):
                    state[element.id] = (
                        label_set if index in position_set else frozenset()
                    )
                continue
            if (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(value, (ast.Tuple, ast.List))
                and len(target.elts) == len(value.elts)
                and all(isinstance(e, ast.Name) for e in target.elts)
            ):
                for element, sub_value in zip(target.elts, value.elts):
                    state[element.id] = self.expr_labels(sub_value, state)
                continue
            labels = self.expr_labels(value, state)
            if seam is not None:
                seam_labels, _ = seam
                labels = labels | frozenset(seam_labels)
            for name in _target_names(target):
                state[name] = labels

    # -- fixpoint ---------------------------------------------------------------

    def run(self) -> "TaintAnalysis":
        """Iterate block transfer to fixpoint; states stabilise (finite labels)."""
        self._entry_states = {block.id: {} for block in self.cfg.blocks}
        self._entry_states[self.cfg.entry.id] = dict(self._initial)
        predecessors = {b.id: self.cfg.predecessors(b) for b in self.cfg.blocks}
        changed = True
        while changed:
            changed = False
            for block in self.cfg.blocks:
                entry: TaintState = dict(self._entry_states[block.id])
                for pred in predecessors[block.id]:
                    _merge(entry, self._block_exit(pred))
                if _merge(self._entry_states[block.id], entry):
                    changed = True
        return self

    def _block_exit(self, block: BasicBlock) -> TaintState:
        state = dict(self._entry_states.get(block.id, {}))
        for stmt in block.statements:
            state = self.transfer(stmt, state)
        return state

    def block_entry(self, block_id: int) -> TaintState:
        """Taint state at a block's entry after :meth:`run`."""
        return dict(self._entry_states.get(block_id, {}))

    def visit_statements(
        self, visit: Callable[[ast.stmt, TaintState], None]
    ) -> None:
        """Final pass: call ``visit(stmt, state-before-stmt)`` everywhere."""
        for block in self.cfg.blocks:
            state = dict(self._entry_states.get(block.id, {}))
            for stmt in block.statements:
                visit(stmt, state)
                state = self.transfer(stmt, state)

    def call_argument_labels(
        self, call: ast.Call, state: TaintState
    ) -> List[Tuple[Optional[str], FrozenSet[Label]]]:
        """Per-argument labels of a call: ``(kwarg-name-or-None, labels)``."""
        out: List[Tuple[Optional[str], FrozenSet[Label]]] = []
        for arg in call.args:
            out.append((None, self.expr_labels(arg, state)))
        for keyword in call.keywords:
            out.append((keyword.arg, self.expr_labels(keyword.value, state)))
        return out


def _call_name(call: ast.Call) -> str:
    """Terminal callee name: ``len`` for ``len(x)``, ``fit`` for ``m.fit(x)``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""
