"""Tests for correlation utilities, CFS, and selection wrappers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.cfs import CFSSelector, cfs_merit
from repro.features.correlation import (
    feature_feature_correlation,
    feature_target_correlation,
    pearson_correlation,
    spearman_correlation,
)
from repro.features.selection import (
    BestKSweepSelector,
    CFSSelectedRegressor,
    SelectKBest,
)
from repro.models.linear import LinearRegression, QuantileLinearRegression


class TestPearson:
    def test_perfect_positive(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        a = np.arange(10.0)
        assert pearson_correlation(a, -a) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self, rng):
        a, b = rng.normal(size=(2, 50))
        assert pearson_correlation(a, b) == pytest.approx(np.corrcoef(a, b)[0, 1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.arange(3.0), np.arange(4.0))

    @given(st.integers(0, 100))
    @settings(max_examples=20)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        a, b = rng.normal(size=(2, 20))
        assert -1.0 - 1e-9 <= pearson_correlation(a, b) <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        a = np.arange(1.0, 20.0)
        assert spearman_correlation(a, a**3) == pytest.approx(1.0)

    def test_constant_gives_zero(self):
        assert spearman_correlation(np.ones(6), np.arange(6.0)) == 0.0


class TestVectorisedCorrelation:
    def test_feature_target_matches_scalar(self, rng):
        X = rng.normal(size=(40, 5))
        y = rng.normal(size=40)
        vectorised = feature_target_correlation(X, y)
        for j in range(5):
            assert vectorised[j] == pytest.approx(pearson_correlation(X[:, j], y))

    def test_dead_columns_get_zero(self, rng):
        X = np.column_stack([rng.normal(size=20), np.full(20, 3.0)])
        corr = feature_target_correlation(X, rng.normal(size=20))
        assert corr[1] == 0.0

    def test_constant_target_gives_zeros(self, rng):
        X = rng.normal(size=(20, 3))
        np.testing.assert_array_equal(
            feature_target_correlation(X, np.ones(20)), 0.0
        )

    def test_feature_feature_symmetric_unit_diag(self, rng):
        X = rng.normal(size=(30, 6))
        corr = feature_feature_correlation(X, np.arange(4))
        np.testing.assert_allclose(corr, corr.T)
        np.testing.assert_allclose(np.diag(corr), 1.0)

    def test_spearman_mode(self, rng):
        X = np.exp(rng.normal(size=(50, 2)))
        y = X[:, 0] ** 2
        corr = feature_target_correlation(X, y, method="spearman")
        assert corr[0] == pytest.approx(1.0)

    def test_rejects_unknown_method(self, rng):
        with pytest.raises(ValueError, match="method"):
            feature_target_correlation(np.ones((5, 2)), np.arange(5.0), method="kendall")


class TestCFSMerit:
    def test_single_feature_merit_is_rfy(self):
        assert cfs_merit(0.8, 0.0, 1) == pytest.approx(0.8)

    def test_redundancy_lowers_merit(self):
        independent = cfs_merit(0.8, 0.0, 4)
        redundant = cfs_merit(0.8, 0.9, 4)
        assert independent > redundant

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError, match="k"):
            cfs_merit(0.5, 0.1, 0)

    def test_rejects_negative_correlation(self):
        with pytest.raises(ValueError):
            cfs_merit(-0.1, 0.0, 2)


class TestCFSSelector:
    def test_picks_informative_feature_first(self, rng):
        X = rng.normal(size=(200, 10))
        y = 3.0 * X[:, 4] + rng.normal(scale=0.1, size=200)
        selector = CFSSelector(k_max=3).fit(X, y)
        assert selector.selected_[0] == 4

    def test_prefers_complementary_over_duplicate(self, rng):
        signal_a = rng.normal(size=300)
        signal_b = rng.normal(size=300)
        y = signal_a + signal_b
        X = np.column_stack(
            [signal_a, signal_a + rng.normal(scale=0.01, size=300), signal_b]
        )
        selector = CFSSelector(k_max=2).fit(X, y)
        # Columns 0 and 1 are interchangeable duplicates; the essential
        # behaviour is that the second pick is the complementary signal
        # (column 2), not the redundant twin.
        assert 2 in selector.selected_
        assert not {0, 1} <= set(selector.selected_)

    def test_subset_prefix_property(self, lot):
        X, _ = lot.features(0)
        y = lot.target(25.0, 0)
        selector = CFSSelector(k_max=6).fit(X[:100], y[:100])
        assert selector.subset(3) == selector.selected_[:3]

    def test_merits_recorded_per_size(self, rng):
        X = rng.normal(size=(100, 8))
        y = X[:, 0] + rng.normal(size=100)
        selector = CFSSelector(k_max=4).fit(X, y)
        assert len(selector.merits_) == len(selector.selected_) == 4

    def test_transform_projects_columns(self, rng):
        X = rng.normal(size=(50, 6))
        y = X[:, 2] + rng.normal(scale=0.1, size=50)
        selector = CFSSelector(k_max=2).fit(X, y)
        out = selector.transform(X, k=1)
        np.testing.assert_array_equal(out[:, 0], X[:, selector.selected_[0]])

    def test_subset_rejects_out_of_range(self, rng):
        X = rng.normal(size=(30, 3))
        selector = CFSSelector(k_max=2).fit(X, rng.normal(size=30))
        with pytest.raises(ValueError):
            selector.subset(5)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CFSSelector().subset(1)


class TestSelectKBest:
    def test_keeps_top_correlated(self, rng):
        X = rng.normal(size=(150, 5))
        y = X[:, 1] * 4 + X[:, 3] + rng.normal(scale=0.2, size=150)
        selector = SelectKBest(k=2).fit(X, y)
        assert set(selector.selected_) == {1, 3}

    def test_k_clamped_to_width(self, rng):
        X = rng.normal(size=(20, 3))
        selector = SelectKBest(k=10).fit(X, rng.normal(size=20))
        assert selector.selected_.size == 3

    def test_transform_shape(self, rng):
        X = rng.normal(size=(20, 6))
        out = SelectKBest(k=4).fit_transform(X, rng.normal(size=20))
        assert out.shape == (20, 4)


class TestBestKSweep:
    def test_chooses_small_k_for_single_signal(self, rng):
        X = rng.normal(size=(200, 12))
        y = 2.0 * X[:, 0] + rng.normal(scale=0.05, size=200)
        sweep = BestKSweepSelector(
            LinearRegression, k_range=(1, 3, 6), random_state=0
        ).fit(X, y)
        assert 0 in sweep.selected_
        assert len(sweep.sweep_scores_) == 3

    def test_rejects_empty_k_range(self):
        with pytest.raises(ValueError):
            BestKSweepSelector(LinearRegression, k_range=())


class TestCFSSelectedRegressor:
    def test_selection_happens_inside_fit(self, rng):
        X = rng.normal(size=(100, 30))
        y = X[:, 9] * 2 + rng.normal(scale=0.1, size=100)
        model = CFSSelectedRegressor(LinearRegression(), k=3).fit(X, y)
        assert 9 in model.selector_.selected_
        assert model.score(X, y) > 0.9

    def test_clone_with_quantile_retargets_inner_model(self, rng):
        from repro.models.base import clone

        template = CFSSelectedRegressor(
            QuantileLinearRegression(), k=2, quantile=0.5
        )
        low = clone(template, quantile=0.05)
        X = rng.normal(size=(80, 5))
        y = X[:, 0] + rng.normal(size=80)
        low.fit(X, y)
        assert low.model_.quantile == 0.05

    def test_predict_interval_requires_capable_inner(self, rng):
        X = rng.normal(size=(40, 4))
        y = rng.normal(size=40)
        model = CFSSelectedRegressor(LinearRegression(), k=2).fit(X, y)
        with pytest.raises(TypeError, match="predict_interval"):
            model.predict_interval(X)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CFSSelectedRegressor(LinearRegression()).predict(np.zeros((2, 2)))


class TestCFSRobustness:
    def test_rejects_nan_features(self, rng):
        X = rng.normal(size=(30, 4))
        X[3, 2] = np.nan
        with pytest.raises(ValueError, match="finite"):
            CFSSelector(k_max=2).fit(X, rng.normal(size=30))

    def test_rejects_inf_target(self, rng):
        X = rng.normal(size=(30, 4))
        y = rng.normal(size=30)
        y[0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            CFSSelector(k_max=2).fit(X, y)

    def test_all_dead_columns_still_selects(self, rng):
        """A pathological all-constant matrix must not crash: merits are
        zero but a deterministic subset is still returned."""
        X = np.ones((20, 5))
        selector = CFSSelector(k_max=3).fit(X, rng.normal(size=20))
        assert len(selector.selected_) == 3
