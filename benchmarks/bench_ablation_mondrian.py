"""Ablation -- marginal vs group-conditional (Mondrian) conformal coverage.

Marginal conformal prediction guarantees coverage *averaged over the
whole population*; an automotive quality flow usually needs it per
subpopulation (per wafer zone, per speed bin).  This benchmark generates
a lot with wafer hierarchy enabled (centre/mid/edge ring zones carry
systematically different silicon), then compares:

* marginal split-CP around a linear model, audited per zone,
* Mondrian split-CP calibrated per zone.

Expected shape: marginal CP shows a visible coverage spread across zones
(over-covering the easy zone, under-covering the hard one) while
Mondrian levels every zone near the target, paying with zone-dependent
width.  The zone label rides along as the last feature column so the
group function can read it at predict time.
"""

from __future__ import annotations

import numpy as np
from conftest import BENCH_SEED, publish

from repro.core import MondrianConformalRegressor, SplitConformalRegressor
from repro.eval.diagnostics import coverage_by_group
from repro.eval.reporting import format_table
from repro.features.selection import CFSSelectedRegressor
from repro.models import LinearRegression
from repro.silicon import SiliconDataset, WaferModel

N_ZONES = 3
N_REPEATS = 5


def _render(profile) -> str:
    # A dedicated lot with pronounced wafer structure (stronger radial
    # signature than default so the zone effect is visible at n=156).
    wafer_model = WaferModel(radial_amplitude_v=0.012, radial_sigma_v=0.003)
    dataset = SiliconDataset.generate(seed=BENCH_SEED, wafer_model=wafer_model)
    X_raw, _ = dataset.features(0)
    y_all = dataset.target(-45.0, 0) * 1000.0  # the zone-sensitive corner
    # Equal-population radius terciles: geometric rings leave the centre
    # zone with too few chips to calibrate a per-zone quantile at n=156.
    radius = np.hypot(dataset.wafer.die_xy[:, 0], dataset.wafer.die_xy[:, 1])
    boundaries = np.quantile(radius, [1 / 3, 2 / 3])
    zones = np.searchsorted(boundaries, radius, side="right").astype(float)
    X_all = np.hstack([X_raw, zones[:, None]])  # zone rides as last column

    def group_function(X):
        return X[:, -1].astype(int)

    per_zone = {
        label: {"marginal": [], "mondrian": []} for label in range(N_ZONES)
    }
    widths = {"marginal": [], "mondrian": []}
    for repeat in range(N_REPEATS):
        permutation = np.random.default_rng(repeat).permutation(y_all.shape[0])
        X, y = X_all[permutation], y_all[permutation]
        train, test = permutation[:117], permutation[117:]
        X_train, y_train = X[:117], y[:117]
        X_test, y_test = X[117:], y[117:]

        base = CFSSelectedRegressor(LinearRegression(), k=10)
        marginal = SplitConformalRegressor(
            base, alpha=0.1, random_state=repeat
        ).fit(X_train, y_train)
        mondrian = MondrianConformalRegressor(
            CFSSelectedRegressor(LinearRegression(), k=10),
            group_function,
            alpha=0.1,
            calibration_fraction=0.4,  # per-zone quantiles need members
            random_state=repeat,
        ).fit(X_train, y_train)

        for name, model in (("marginal", marginal), ("mondrian", mondrian)):
            intervals = model.predict_interval(X_test)
            widths[name].append(intervals.mean_width)
            report = coverage_by_group(
                intervals, y_test, group_function(X_test)
            )
            for label, coverage in zip(report.groups, report.coverages):
                per_zone[int(label)][name].append(coverage)

    zone_names = {0: "centre", 1: "mid", 2: "edge"}
    rows = []
    for label in range(N_ZONES):
        rows.append(
            [
                zone_names[label],
                float(np.mean(per_zone[label]["marginal"])) * 100.0,
                float(np.mean(per_zone[label]["mondrian"])) * 100.0,
            ]
        )
    rows.append(
        [
            "mean width (mV)",
            float(np.mean(widths["marginal"])),
            float(np.mean(widths["mondrian"])),
        ]
    )
    table = format_table(
        ["Wafer zone", "Marginal CP cov (%)", "Mondrian CP cov (%)"],
        rows,
        title=(
            "Ablation | per-wafer-zone coverage, -45C, 0h "
            f"(alpha=0.1, mean of {N_REPEATS} splits)"
        ),
    )
    spread_marginal = max(
        abs(np.mean(per_zone[z]["marginal"]) - 0.9) for z in range(N_ZONES)
    )
    spread_mondrian = max(
        abs(np.mean(per_zone[z]["mondrian"]) - 0.9) for z in range(N_ZONES)
    )
    note = (
        f"\nworst zone deviation from 90% target: marginal "
        f"{spread_marginal*100:.1f} pts, Mondrian {spread_mondrian*100:.1f} pts"
    )
    return table + note


def test_ablation_mondrian(benchmark, profile):
    text = benchmark.pedantic(_render, args=(profile,), rounds=1, iterations=1)
    publish("ablation_mondrian", text)
