"""Histogram-based, level-batched growth of gradient trees.

Grows the same depth-wise Newton trees as
:class:`repro.models.tree.GradientTree`, but on pre-binned features with
all leaves of a level processed in one ``np.bincount`` pass (the LightGBM
``depth-wise`` strategy).  On the paper's 1800-feature parametric block
this is what makes fitting a 100-tree boosting model interactive instead
of minutes-long; with ``max_bins`` at least the number of distinct feature
values it is exactly equivalent to the exact-greedy reference grower,
which the test suite verifies.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.binning import (
    BinnedDataset,
    FeatureBinner,
    histogram_cells,
    histogram_sums,
)
from repro.models.tree import GradientTree, TreeGrowthParams, _NodeBuffers

__all__ = ["grow_histogram_tree"]

_LEAF = -1


def grow_histogram_tree(
    binned: np.ndarray,
    binner: FeatureBinner,
    gradients: np.ndarray,
    hessians: np.ndarray,
    params: TreeGrowthParams,
    candidate_features: Optional[np.ndarray] = None,
    feature_shortlist: Optional[int] = None,
    dataset: Optional[BinnedDataset] = None,
) -> GradientTree:
    """Grow one depth-wise Newton tree on pre-binned features.

    Parameters
    ----------
    binned:
        Integer bin codes from ``binner.transform`` (n_samples, n_features).
    binner:
        The fitted :class:`FeatureBinner`; needed to translate chosen bin
        indices back into raw-unit thresholds so the returned tree predicts
        directly on raw feature matrices.
    gradients, hessians:
        Per-sample first/second derivatives of the loss at the current
        boosting prediction.
    params:
        Growth limits and regularisation (same semantics as the exact
        grower).
    candidate_features:
        Columns eligible for splitting (``colsample`` support); all by
        default.
    feature_shortlist:
        Wide-data speedup: after the root level scores every candidate
        exactly, deeper levels only consider the top-K features by root
        gain.  ``None`` keeps the exact search at every level.
    dataset:
        Optional :class:`~repro.models.binning.BinnedDataset` whose
        ``codes`` are this very ``binned`` matrix with
        ``candidate_features`` spanning every column.  When given, the
        level-0 cell index and unit-weight histogram come from the
        dataset's cache instead of being recomputed -- they are
        round-invariant, and recomputing them dominated the per-round
        cost before this seam existed.  Strictly result-preserving:
        callers for which the contract does not hold simply omit it.

    Returns
    -------
    GradientTree
        A fitted tree whose ``predict`` operates on raw (un-binned) X.
    """
    n_samples, n_features = binned.shape
    gradients = np.asarray(gradients, dtype=np.float64)
    hessians = np.asarray(hessians, dtype=np.float64)
    if gradients.shape != (n_samples,) or hessians.shape != (n_samples,):
        raise ValueError("gradients/hessians must be 1-D with len(binned) entries")
    if candidate_features is None:
        candidate_features = np.arange(n_features)
    n_bins = binner.n_bins
    lam = params.reg_lambda

    buffers = _NodeBuffers()
    root = buffers.new_node()
    # slot: position of each sample's current *active* leaf at this level;
    # -1 means the sample's path has terminated in a finished leaf.
    slot = np.zeros(n_samples, dtype=np.int64)
    active_nodes: List[int] = [root]

    for depth in range(params.max_depth + 1):
        if not active_nodes:
            break
        n_active = len(active_nodes)
        live = slot >= 0
        grad_leaf = np.bincount(
            slot[live], weights=gradients[live], minlength=n_active
        )
        hess_leaf = np.bincount(
            slot[live], weights=hessians[live], minlength=n_active
        )
        count_leaf = np.bincount(slot[live], minlength=n_active)
        for position, node_id in enumerate(active_nodes):
            buffers.value[node_id] = -grad_leaf[position] / (hess_leaf[position] + lam)

        if depth == params.max_depth:
            break

        # Avoid materialising full-matrix copies while every sample is
        # still live (always true at the root; true at every level until
        # the first leaf terminates) -- binned[live] with an all-True
        # mask is the costliest no-op in the grower.
        all_live = bool(live.all())
        binned_live = binned if all_live else binned[live]
        slot_live = slot if all_live else slot[live]
        gradients_live = gradients if all_live else gradients[live]
        n_live = binned_live.shape[0]
        unit_hessian = bool(np.all(hessians == 1.0))
        n_candidates = candidate_features.size
        root_unit = None
        if (
            dataset is not None
            and depth == 0
            and all_live
            and n_candidates == n_features
            and np.array_equal(candidate_features, np.arange(n_features))
        ):
            # Round-invariant level-0 state shared across the whole
            # boosting run (and across the lo/hi quantile pair).
            cell, root_unit = dataset.root_level(n_bins)
        else:
            cell = histogram_cells(
                binned_live, slot_live, n_active, n_bins, candidate_features
            )
        grad_cells = histogram_sums(
            cell, gradients_live, n_active, n_bins, n_candidates
        )
        if unit_hessian:
            # Both supported objectives (squared error, pinball) have unit
            # Hessians, so the Hessian histogram doubles as a sample count.
            hess_cells = (
                root_unit
                if root_unit is not None
                else histogram_sums(
                    cell, np.ones(n_live), n_active, n_bins, n_candidates
                )
            )
            count_cells = hess_cells
        else:
            hess_cells = histogram_sums(
                cell,
                hessians if all_live else hessians[live],
                n_active,
                n_bins,
                n_candidates,
            )
            count_cells = (
                root_unit
                if root_unit is not None
                else histogram_sums(
                    cell, np.ones(n_live), n_active, n_bins, n_candidates
                )
            )

        grad_left = np.cumsum(grad_cells, axis=2)[:, :, :-1]
        hess_left = np.cumsum(hess_cells, axis=2)[:, :, :-1]
        count_left = (
            hess_left if unit_hessian else np.cumsum(count_cells, axis=2)[:, :, :-1]
        )
        grad_total = grad_leaf[None, :, None]
        hess_total = hess_leaf[None, :, None]
        count_total = count_leaf[None, :, None]
        grad_right = grad_total - grad_left
        hess_right = hess_total - hess_left
        count_right = count_total - count_left

        admissible = (
            (count_left >= params.min_samples_leaf)
            & (count_right >= params.min_samples_leaf)
        )
        if params.min_child_weight > 0:
            admissible &= (hess_left >= params.min_child_weight) & (
                hess_right >= params.min_child_weight
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            gain = 0.5 * (
                grad_left**2 / (hess_left + lam)
                + grad_right**2 / (hess_right + lam)
                - grad_total**2 / (hess_total + lam)
            )
        gain = np.where(admissible, gain, -np.inf)

        if (
            depth == 0
            and feature_shortlist is not None
            and candidate_features.size > feature_shortlist
        ):
            # Root-gain shortlist: deeper levels only consider the top-K
            # features.  Index both arrays with the same sorted positions
            # so gain rows stay aligned with candidate_features.
            root_scores = gain.max(axis=(1, 2))
            top = np.sort(np.argsort(root_scores)[-feature_shortlist:])
            candidate_features = candidate_features[top]
            gain = gain[top]
        # Best (feature, bin) per active leaf.
        flat = gain.transpose(1, 0, 2).reshape(n_active, -1)  # (L, F*(nb-1))
        best_flat = np.argmax(flat, axis=1)
        best_gain = flat[np.arange(n_active), best_flat]
        width = gain.shape[2]
        best_feature_pos = best_flat // width
        best_bin = best_flat % width

        next_active: List[int] = []
        split_feature = np.full(n_active, -1, dtype=np.int64)
        split_bin = np.zeros(n_active, dtype=np.int64)
        new_slot_left = np.zeros(n_active, dtype=np.int64)
        any_split = False
        for position, node_id in enumerate(active_nodes):
            if not np.isfinite(best_gain[position]) or best_gain[position] <= params.gamma:
                continue
            feature = int(candidate_features[best_feature_pos[position]])
            bin_index = int(best_bin[position])
            left_id = buffers.new_node()
            right_id = buffers.new_node()
            buffers.feature[node_id] = feature
            buffers.threshold[node_id] = binner.threshold(feature, bin_index)
            buffers.left[node_id] = left_id
            buffers.right[node_id] = right_id
            split_feature[position] = feature
            split_bin[position] = bin_index
            new_slot_left[position] = len(next_active)
            next_active.append(left_id)
            next_active.append(right_id)
            any_split = True

        if not any_split:
            break

        # Re-slot samples: children occupy consecutive positions; samples in
        # unsplit leaves terminate.
        old_slot = slot.copy()
        for position in range(n_active):
            members = old_slot == position
            if split_feature[position] < 0:
                slot[members] = -1
                continue
            goes_right = binned[members, split_feature[position]] > split_bin[position]
            base = new_slot_left[position]
            member_rows = np.flatnonzero(members)
            slot[member_rows[~goes_right]] = base
            slot[member_rows[goes_right]] = base + 1
        active_nodes = next_active

    tree = GradientTree(params)
    tree.feature_ = np.asarray(buffers.feature, dtype=np.int64)
    tree.threshold_ = np.asarray(buffers.threshold, dtype=np.float64)
    tree.left_ = np.asarray(buffers.left, dtype=np.int64)
    tree.right_ = np.asarray(buffers.right, dtype=np.int64)
    tree.value_ = np.asarray(buffers.value, dtype=np.float64)
    tree.n_features_in_ = int(n_features)
    return tree
