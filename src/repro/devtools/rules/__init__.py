"""The reprolint rule registry.

``ALL_RULES`` is the ordered tuple of rule *classes* (the engine
instantiates them per run, so rules can keep per-module state without
cross-run leakage).  Adding a rule means: write the module, import the
class here, append it to ``ALL_RULES``, document it in
``docs/LINT.md``, and add fire/silent unit tests.
"""

from __future__ import annotations

from typing import Iterator, Tuple, Type

from repro.devtools.rules.asserts import NoAssertRule
from repro.devtools.rules.base import Rule, dotted_name
from repro.devtools.rules.defaults import MutableDefaultRule
from repro.devtools.rules.docstrings import DocstringCoverageRule
from repro.devtools.rules.estimator import EstimatorContractRule
from repro.devtools.rules.exports import DunderAllRule
from repro.devtools.rules.floats import FloatEqualityRule
from repro.devtools.rules.rng import RngDisciplineRule
from repro.devtools.rules.validation import AlphaValidationRule

__all__ = [
    "ALL_RULES",
    "AlphaValidationRule",
    "DocstringCoverageRule",
    "DunderAllRule",
    "EstimatorContractRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "NoAssertRule",
    "RngDisciplineRule",
    "Rule",
    "dotted_name",
    "get_rule",
    "iter_rules",
]

ALL_RULES: Tuple[Type[Rule], ...] = (
    RngDisciplineRule,
    FloatEqualityRule,
    MutableDefaultRule,
    NoAssertRule,
    DunderAllRule,
    EstimatorContractRule,
    AlphaValidationRule,
    DocstringCoverageRule,
)


def iter_rules() -> Iterator[Type[Rule]]:
    """Iterate registered rule classes in id order."""
    return iter(ALL_RULES)


def get_rule(identifier: str) -> Type[Rule]:
    """Look a rule class up by id (``REP101``) or name (``rng-discipline``)."""
    for rule in ALL_RULES:
        if identifier in (rule.rule_id, rule.name):
            return rule
    raise KeyError(
        f"unknown rule {identifier!r}; known rules: "
        + ", ".join(f"{r.rule_id} ({r.name})" for r in ALL_RULES)
    )
