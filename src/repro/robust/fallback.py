"""Graceful degradation: structured status instead of exceptions.

A deployed Vmin predictor has exactly three honest answers when its
inputs are damaged, ordered by how much trust survives:

* ``OK`` -- the batch is clean, serve the calibrated interval as-is;
* ``DEGRADED`` -- some sensors were imputed; serve the primary model
  but *inflate* the interval in proportion to the damage, because the
  conformal guarantee was calibrated on clean features;
* ``FALLBACK`` -- the on-chip monitor block is too damaged to trust at
  all; switch to a model trained on the still-healthy feature group
  (typically time-zero parametric data) and inflate.

:class:`DegradationPolicy` encodes the thresholds and the inflation
schedule; :class:`DegradedPrediction` is the structured result every
robust prediction returns -- intervals plus status, health report,
inflation factor, and human-readable notes -- so a test-floor
integration can log and branch instead of catching exceptions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.robust.guard import HealthReport

__all__ = [
    "DegradationPolicy",
    "DegradationStatus",
    "DegradedPrediction",
    "inflate_intervals",
]


class DegradationStatus(enum.Enum):
    """How much of the nominal serving path survived for a batch."""

    OK = "ok"
    DEGRADED = "degraded"
    FALLBACK = "fallback"


def inflate_intervals(
    intervals: PredictionIntervals, factor: float
) -> PredictionIntervals:
    """Widen every interval about its midpoint by ``factor`` (>= 1).

    Inflation is the honest response to serving on imputed features: the
    split-conformal margin was calibrated for clean inputs, so the band
    is stretched symmetrically rather than silently served over-tight.
    """
    if not np.isfinite(factor) or factor < 1.0:
        raise ValueError(f"inflation factor must be >= 1, got {factor}")
    mid = intervals.midpoint
    half = intervals.width / 2.0
    return PredictionIntervals(mid - factor * half, mid + factor * half)


@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds and inflation schedule for degraded serving.

    Attributes
    ----------
    degraded_threshold:
        Unhealthy-feature fraction above which the batch is no longer
        ``OK`` (any imputation at all below this is tolerated silently).
    fallback_threshold:
        Unhealthy fraction *of the monitored feature group* above which
        the primary model is abandoned for the fallback model.
    width_inflation:
        Extra relative width charged per unit unhealthy fraction:
        the factor is ``1 + width_inflation * unhealthy_fraction``.
    max_inflation:
        Hard cap on the inflation factor.
    """

    degraded_threshold: float = 0.0
    fallback_threshold: float = 0.3
    width_inflation: float = 1.5
    max_inflation: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.degraded_threshold <= 1.0:
            raise ValueError(
                f"degraded_threshold must be in [0, 1], got {self.degraded_threshold}"
            )
        if not 0.0 < self.fallback_threshold <= 1.0:
            raise ValueError(
                f"fallback_threshold must be in (0, 1], got {self.fallback_threshold}"
            )
        if self.width_inflation < 0:
            raise ValueError(
                f"width_inflation must be >= 0, got {self.width_inflation}"
            )
        if self.max_inflation < 1.0:
            raise ValueError(f"max_inflation must be >= 1, got {self.max_inflation}")

    def classify(
        self, unhealthy_fraction: float, monitor_unhealthy_fraction: float
    ) -> DegradationStatus:
        """Map damage fractions to a serving status."""
        if monitor_unhealthy_fraction >= self.fallback_threshold:
            return DegradationStatus.FALLBACK
        if unhealthy_fraction > self.degraded_threshold:
            return DegradationStatus.DEGRADED
        return DegradationStatus.OK

    def inflation_factor(self, unhealthy_fraction: float) -> float:
        """Interval-width multiplier charged for ``unhealthy_fraction``."""
        if not 0.0 <= unhealthy_fraction <= 1.0:
            raise ValueError(
                f"unhealthy_fraction must be in [0, 1], got {unhealthy_fraction}"
            )
        return float(
            min(1.0 + self.width_inflation * unhealthy_fraction, self.max_inflation)
        )


@dataclass(frozen=True)
class DegradedPrediction:
    """Intervals plus the full story of how they were produced.

    Attributes
    ----------
    intervals:
        The served (possibly inflated, possibly fallback) intervals.
    status:
        :class:`DegradationStatus` of the batch.
    health:
        The :class:`~repro.robust.guard.HealthReport` that drove the
        decision.
    inflation:
        Width multiplier applied (1.0 when nominal).
    used_fallback:
        True when the fallback model produced the band.
    notes:
        Human-readable audit trail of every degradation action taken.
    """

    intervals: PredictionIntervals
    status: DegradationStatus
    health: HealthReport
    inflation: float = 1.0
    used_fallback: bool = False
    notes: Tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def lower(self) -> np.ndarray:
        """Served lower bounds (V)."""
        return self.intervals.lower

    @property
    def upper(self) -> np.ndarray:
        """Served upper bounds (V)."""
        return self.intervals.upper

    @property
    def nominal(self) -> bool:
        """True iff the batch was served on the clean path, uninflated."""
        return self.status is DegradationStatus.OK

    def coverage(self, y: np.ndarray) -> float:
        """Empirical coverage of the served intervals."""
        return self.intervals.coverage(y)

    @property
    def mean_width(self) -> float:
        """Average served interval length (V)."""
        return self.intervals.mean_width

    def describe(self) -> str:
        """One-line audit summary."""
        parts = [
            f"status={self.status.value}",
            f"inflation={self.inflation:.2f}x",
            f"fallback={self.used_fallback}",
            self.health.describe(),
        ]
        if self.notes:
            parts.append("; ".join(self.notes))
        return " | ".join(parts)
