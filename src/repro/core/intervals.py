"""Prediction-interval container shared by every region predictor.

Having one immutable result type keeps the evaluation code honest: length
and coverage (the two metrics of Table III) are computed the same way no
matter which model produced the interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PredictionIntervals"]


@dataclass(frozen=True)
class PredictionIntervals:
    """A batch of per-sample closed intervals ``[lower_i, upper_i]``.

    Instances are validated on construction: bounds must be finite 1-D
    arrays of equal length with ``lower <= upper`` everywhere.
    """

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        if lower.ndim != 1 or upper.ndim != 1 or lower.shape != upper.shape:
            raise ValueError(
                f"bounds must be 1-D arrays of equal length, got "
                f"{lower.shape} and {upper.shape}"
            )
        if not (np.all(np.isfinite(lower)) and np.all(np.isfinite(upper))):
            raise ValueError("interval bounds must be finite")
        if np.any(lower > upper):
            bad = int(np.argmax(lower > upper))
            raise ValueError(
                f"lower bound exceeds upper bound at index {bad}: "
                f"[{lower[bad]}, {upper[bad]}]"
            )
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    def __len__(self) -> int:
        return int(self.lower.shape[0])

    @property
    def width(self) -> np.ndarray:
        """Per-sample interval length."""
        return self.upper - self.lower

    @property
    def mean_width(self) -> float:
        """Average interval length -- Table III's "Length" column."""
        return float(np.mean(self.width))

    @property
    def midpoint(self) -> np.ndarray:
        """Per-sample interval centre."""
        return (self.lower + self.upper) / 2.0

    def contains(self, y: np.ndarray) -> np.ndarray:
        """Boolean mask of which targets fall inside their interval."""
        y = np.asarray(y, dtype=np.float64)
        if y.shape != self.lower.shape:
            raise ValueError(
                f"y has shape {y.shape}, intervals have shape {self.lower.shape}"
            )
        return (y >= self.lower) & (y <= self.upper)

    def coverage(self, y: np.ndarray) -> float:
        """Empirical coverage rate -- Table III's "Coverage" column."""
        return float(np.mean(self.contains(y)))

    def clip(self, minimum: float = -np.inf, maximum: float = np.inf) -> "PredictionIntervals":
        """Return a copy with both bounds clipped to ``[minimum, maximum]``.

        Used by the screening flow to enforce physical limits (a Vmin
        below 0 V is meaningless).
        """
        return PredictionIntervals(
            np.clip(self.lower, minimum, maximum),
            np.clip(self.upper, minimum, maximum),
        )
