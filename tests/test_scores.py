"""Tests for conformity score functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import (
    absolute_residual_score,
    cqr_score,
    normalized_residual_score,
)

finite = st.floats(-100, 100, allow_nan=False)


class TestAbsoluteResidual:
    def test_values(self):
        scores = absolute_residual_score(
            np.array([1.0, 2.0]), np.array([3.0, 1.0])
        )
        np.testing.assert_allclose(scores, [2.0, 1.0])

    def test_nonnegative(self, rng):
        scores = absolute_residual_score(rng.normal(size=50), rng.normal(size=50))
        assert np.all(scores >= 0)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            absolute_residual_score(np.zeros(3), np.zeros(2))


class TestCQRScore:
    def test_inside_band_is_negative(self):
        scores = cqr_score(np.array([5.0]), np.array([0.0]), np.array([10.0]))
        assert scores[0] == -5.0

    def test_escape_below(self):
        scores = cqr_score(np.array([-2.0]), np.array([0.0]), np.array([10.0]))
        assert scores[0] == 2.0

    def test_escape_above(self):
        scores = cqr_score(np.array([13.0]), np.array([0.0]), np.array([10.0]))
        assert scores[0] == 3.0

    def test_on_boundary_is_zero(self):
        scores = cqr_score(np.array([0.0, 10.0]), np.zeros(2), np.full(2, 10.0))
        np.testing.assert_allclose(scores, 0.0)

    def test_rejects_unsorted_band(self):
        with pytest.raises(ValueError, match="sort"):
            cqr_score(np.zeros(1), np.array([1.0]), np.array([0.0]))

    @given(y=finite, lo=finite, width=st.floats(0, 100, allow_nan=False))
    @settings(max_examples=60)
    def test_score_iff_outside(self, y, lo, width):
        """s > 0 exactly when y escapes the closed band (Eq. 9 semantics)."""
        hi = lo + width
        score = cqr_score(np.array([y]), np.array([lo]), np.array([hi]))[0]
        outside = y < lo or y > hi
        assert (score > 0) == outside

    @given(y=finite, lo=finite, width=st.floats(0.0, 100, allow_nan=False))
    @settings(max_examples=60)
    def test_interval_widened_by_score_covers(self, y, lo, width):
        """[lo - s, hi + s] always contains y -- the CQR reconstruction."""
        hi = lo + width
        score = cqr_score(np.array([y]), np.array([lo]), np.array([hi]))[0]
        eps = 1e-9 * max(1.0, abs(y), abs(lo), abs(hi))
        assert lo - score - eps <= y <= hi + score + eps


class TestNormalizedScore:
    def test_scales_by_difficulty(self):
        scores = normalized_residual_score(
            np.array([2.0, 2.0]), np.zeros(2), np.array([1.0, 4.0])
        )
        np.testing.assert_allclose(scores, [2.0, 0.5])

    def test_rejects_nonpositive_difficulty(self):
        with pytest.raises(ValueError, match="positive"):
            normalized_residual_score(np.zeros(2), np.zeros(2), np.array([1.0, 0.0]))
