"""Tests for the XGBoost-style gradient boosting regressor."""

import numpy as np
import pytest

from repro.models.gbm import GradientBoostingRegressor


@pytest.fixture()
def boost_data(rng):
    X = rng.normal(size=(200, 6))
    y = 2.0 * X[:, 0] + np.sin(2 * X[:, 1]) + rng.normal(scale=0.2, size=200)
    return X[:150], y[:150], X[150:], y[150:]


class TestPointObjective:
    def test_fits_nonlinear_signal(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        model = GradientBoostingRegressor(random_state=0).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.7

    def test_more_rounds_reduce_training_error(self, boost_data):
        Xtr, ytr, *_ = boost_data
        few = GradientBoostingRegressor(n_estimators=5, random_state=0).fit(Xtr, ytr)
        many = GradientBoostingRegressor(n_estimators=80, random_state=0).fit(Xtr, ytr)
        assert many.score(Xtr, ytr) > few.score(Xtr, ytr)

    def test_base_score_is_target_mean(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = GradientBoostingRegressor(n_estimators=1, random_state=0).fit(Xtr, ytr)
        assert model.base_score_ == pytest.approx(ytr.mean())

    def test_staged_predict_last_stage_matches_predict(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        model = GradientBoostingRegressor(n_estimators=10, random_state=0).fit(Xtr, ytr)
        stages = model.staged_predict(Xte)
        assert stages.shape == (10, Xte.shape[0])
        np.testing.assert_allclose(stages[-1], model.predict(Xte), atol=1e-10)

    def test_deterministic_with_seed(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        a = GradientBoostingRegressor(subsample=0.8, random_state=3).fit(Xtr, ytr)
        b = GradientBoostingRegressor(subsample=0.8, random_state=3).fit(Xtr, ytr)
        np.testing.assert_allclose(a.predict(Xte), b.predict(Xte))

    def test_subsample_and_colsample_run(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        model = GradientBoostingRegressor(
            subsample=0.7, colsample_bytree=0.5, random_state=0
        ).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.5

    def test_exact_method_close_to_hist(self, rng):
        X = rng.normal(size=(60, 3))
        y = X[:, 0] + rng.normal(scale=0.1, size=60)
        hist = GradientBoostingRegressor(
            n_estimators=10, max_bins=256, random_state=0
        ).fit(X, y)
        exact = GradientBoostingRegressor(
            n_estimators=10, tree_method="exact", random_state=0
        ).fit(X, y)
        np.testing.assert_allclose(hist.predict(X), exact.predict(X), atol=1e-8)

    def test_feature_importances(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = GradientBoostingRegressor(n_estimators=20, random_state=0).fit(Xtr, ytr)
        importances = model.feature_importances_
        assert importances.sum() == pytest.approx(1.0)
        assert importances[0] > importances[3]


class TestQuantileObjective:
    def test_base_score_is_empirical_quantile(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = GradientBoostingRegressor(
            n_estimators=1, quantile=0.9, random_state=0
        ).fit(Xtr, ytr)
        assert model.base_score_ == pytest.approx(np.quantile(ytr, 0.9))

    def test_band_ordering_on_average(self, boost_data):
        Xtr, ytr, Xte, _ = boost_data
        lo = GradientBoostingRegressor(quantile=0.1, random_state=0).fit(Xtr, ytr)
        hi = GradientBoostingRegressor(quantile=0.9, random_state=0).fit(Xtr, ytr)
        assert np.mean(hi.predict(Xte) - lo.predict(Xte)) > 0

    def test_training_exceedance_tracks_quantile(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = GradientBoostingRegressor(quantile=0.8, random_state=0).fit(Xtr, ytr)
        below = np.mean(ytr <= model.predict(Xtr))
        assert 0.6 < below <= 1.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_estimators": 0},
            {"learning_rate": 0.0},
            {"subsample": 0.0},
            {"subsample": 1.5},
            {"colsample_bytree": 0.0},
            {"quantile": 1.0},
            {"tree_method": "gpu"},
            {"feature_shortlist": 0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            GradientBoostingRegressor().predict(np.zeros((2, 2)))

    def test_predict_rejects_wrong_width(self, boost_data):
        Xtr, ytr, *_ = boost_data
        model = GradientBoostingRegressor(n_estimators=3, random_state=0).fit(Xtr, ytr)
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((2, 3)))


class TestEarlyStopping:
    def test_eval_history_recorded(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        model = GradientBoostingRegressor(n_estimators=15, random_state=0).fit(
            Xtr, ytr, eval_set=(Xte, yte)
        )
        assert len(model.eval_history_) == 15
        assert model.best_round_ is not None

    def test_stops_before_budget_on_overfit(self, rng):
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)  # pure noise: validation loss turns early
        X_val = rng.normal(size=(40, 3))
        y_val = rng.normal(size=40)
        model = GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.5, random_state=0
        ).fit(X, y, eval_set=(X_val, y_val), early_stopping_rounds=5)
        assert len(model.trees_) < 200
        # Ensemble truncated at the best validation round.
        assert len(model.trees_) == model.best_round_ + 1

    def test_truncation_aligns_history_and_best_round(self, rng):
        """A truncating early stop discards the probe rounds' bookkeeping
        along with their trees: one eval_history_ entry per kept tree and
        best_round_ pointing at the last kept round."""
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        X_val = rng.normal(size=(40, 3))
        y_val = rng.normal(size=40)
        model = GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.5, random_state=0
        ).fit(X, y, eval_set=(X_val, y_val), early_stopping_rounds=5)
        assert len(model.eval_history_) == len(model.trees_)
        assert model.best_round_ == len(model.trees_) - 1
        assert model.eval_history_[model.best_round_] == min(model.eval_history_)

    def test_truncated_staged_predict_matches_predict_exactly(self, rng):
        X = rng.normal(size=(80, 3))
        y = rng.normal(size=80)
        X_val = rng.normal(size=(40, 3))
        y_val = rng.normal(size=40)
        model = GradientBoostingRegressor(
            n_estimators=200, learning_rate=0.5, random_state=0
        ).fit(X, y, eval_set=(X_val, y_val), early_stopping_rounds=5)
        Xte = rng.normal(size=(25, 3))
        stages = model.staged_predict(Xte)
        assert stages.shape[0] == len(model.trees_)
        assert np.array_equal(stages[-1], model.predict(Xte))

    def test_early_stopping_requires_eval_set(self, boost_data):
        Xtr, ytr, *_ = boost_data
        with pytest.raises(ValueError, match="requires an eval_set"):
            GradientBoostingRegressor().fit(Xtr, ytr, early_stopping_rounds=3)

    def test_rejects_bad_patience(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        with pytest.raises(ValueError, match="early_stopping_rounds"):
            GradientBoostingRegressor().fit(
                Xtr, ytr, eval_set=(Xte, yte), early_stopping_rounds=0
            )

    def test_eval_set_width_checked(self, boost_data):
        Xtr, ytr, Xte, yte = boost_data
        with pytest.raises(ValueError, match="features"):
            GradientBoostingRegressor().fit(
                Xtr, ytr, eval_set=(Xte[:, :2], yte)
            )
