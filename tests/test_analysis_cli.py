"""End-to-end tests for ``python -m repro analyze``: exit codes,
report formats, baseline workflow, config loading, engine errors."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.analysis.baseline import load_baseline
from repro.devtools.analysis.cli import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    main,
)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
RACEPKG = str(FIXTURES / "racepkg")
CLEANPKG = str(FIXTURES / "cleanpkg")


def _write_dirty(tmp_path, name="dirty.py"):
    path = tmp_path / name
    path.write_text(
        textwrap.dedent(
            """
            def names(tags):
                tag_set = set(tags)
                return list(tag_set)
            """
        )
    )
    return path


class TestExitCodes:
    def test_clean_package_exits_zero(self, capsys):
        code = main(["--no-config", "--no-baseline", CLEANPKG])
        assert code == EXIT_CLEAN
        assert "all clean" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        code = main(["--no-config", "--no-baseline", RACEPKG])
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REP201" in out and "REP204" in out

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code = main(["--no-config", "--no-baseline", str(tmp_path)])
        assert code == EXIT_ERROR
        out = capsys.readouterr().out
        assert "REP000" in out
        assert "engine-error" in out

    def test_no_paths_is_usage_error(self, capsys):
        assert main(["--no-config"]) == EXIT_ERROR
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["--no-config", "--enable", "REP999", CLEANPKG])
        assert code == EXIT_ERROR
        assert "unknown analysis rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in ("REP201", "REP202", "REP203", "REP204", "REP301", "REP302"):
            assert rule_id in out


class TestRuleSelection:
    def test_disable_drops_rule(self, tmp_path, capsys):
        _write_dirty(tmp_path)
        assert (
            main(["--no-config", "--no-baseline", str(tmp_path)])
            == EXIT_FINDINGS
        )
        capsys.readouterr()
        code = main(
            ["--no-config", "--no-baseline", "--disable", "REP203", str(tmp_path)]
        )
        assert code == EXIT_CLEAN

    def test_enable_is_exclusive(self, capsys):
        code = main(
            ["--no-config", "--no-baseline", "--enable", "REP301", RACEPKG]
        )
        # racepkg has no conformal findings, so REP301-only is clean.
        assert code == EXIT_CLEAN


class TestFormats:
    def test_json_format(self, tmp_path, capsys):
        _write_dirty(tmp_path)
        main(["--no-config", "--no-baseline", "--format", "json", str(tmp_path)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["checked_files"] == 1
        assert [d["rule_id"] for d in payload["diagnostics"]] == ["REP203"]

    def test_sarif_format(self, tmp_path, capsys):
        _write_dirty(tmp_path)
        main(["--no-config", "--no-baseline", "--format", "sarif", str(tmp_path)])
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        run = sarif["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert "REP203" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "REP203"
        assert rule_ids[result["ruleIndex"]] == "REP203"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1

    def test_sarif_output_alongside_text(self, tmp_path, capsys):
        _write_dirty(tmp_path)
        artifact = tmp_path / "report.sarif"
        main(
            [
                "--no-config",
                "--no-baseline",
                "--sarif-output",
                str(artifact),
                str(tmp_path),
            ]
        )
        assert "REP203" in capsys.readouterr().out  # text still on stdout
        sarif = json.loads(artifact.read_text())
        assert sarif["runs"][0]["results"]

    def test_sarif_includes_engine_errors(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        code = main(
            ["--no-config", "--no-baseline", "--format", "sarif", str(tmp_path)]
        )
        assert code == EXIT_ERROR
        sarif = json.loads(capsys.readouterr().out)
        assert any(
            r["ruleId"] == "REP000" for r in sarif["runs"][0]["results"]
        )


class TestBaseline:
    def test_write_then_suppress(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main(
            [
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
                RACEPKG,
            ]
        )
        assert code == EXIT_CLEAN
        assert len(load_baseline(str(baseline)))
        capsys.readouterr()
        code = main(["--no-config", "--baseline", str(baseline), RACEPKG])
        assert code == EXIT_CLEAN
        captured = capsys.readouterr()
        assert "baselined finding(s) suppressed" in captured.err
        assert "all clean" in captured.out

    def test_stale_entries_noted(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(
            [
                "--no-config",
                "--baseline",
                str(baseline),
                "--write-baseline",
                RACEPKG,
            ]
        )
        capsys.readouterr()
        code = main(["--no-config", "--baseline", str(baseline), CLEANPKG])
        assert code == EXIT_CLEAN
        assert "stale baseline entry" in capsys.readouterr().err

    def test_new_finding_not_masked(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        first = tmp_path / "first"
        first.mkdir()
        _write_dirty(first)
        main(
            ["--no-config", "--baseline", str(baseline), "--write-baseline", str(first)]
        )
        _write_dirty(first, name="second.py")
        capsys.readouterr()
        code = main(["--no-config", "--baseline", str(baseline), str(first)])
        assert code == EXIT_FINDINGS
        assert "second.py" in capsys.readouterr().out

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{\"version\": 99}")
        code = main(["--no-config", "--baseline", str(baseline), CLEANPKG])
        assert code == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_write_baseline_without_path_exits_two(self, capsys):
        code = main(["--no-config", "--no-baseline", "--write-baseline", CLEANPKG])
        assert code == EXIT_ERROR
        assert "--write-baseline" in capsys.readouterr().err


class TestConfigLoading:
    def _project_dir(self, tmp_path, analysis_table):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint]\n"
            "disable = []\n"
            "[tool.reprolint.analysis]\n" + analysis_table
        )
        return tmp_path

    def test_analysis_exclude_from_pyproject(self, tmp_path, capsys):
        root = self._project_dir(tmp_path, 'exclude = ["*/generated/*"]\n')
        generated = root / "generated"
        generated.mkdir()
        _write_dirty(generated)
        code = main(["--no-baseline", str(root)])
        assert code == EXIT_CLEAN

    def test_configured_baseline_path(self, tmp_path, capsys):
        root = self._project_dir(tmp_path, 'baseline = "accepted.json"\n')
        _write_dirty(root)
        code = main(["--write-baseline", str(root)])
        assert code == EXIT_CLEAN
        # The relative baseline is anchored at the pyproject directory.
        assert len(load_baseline(str(root / "accepted.json")))

    def test_configured_disable(self, tmp_path, capsys):
        root = self._project_dir(tmp_path, 'disable = ["REP203"]\n')
        _write_dirty(root)
        assert main(["--no-baseline", str(root)]) == EXIT_CLEAN


class TestModuleEntryPoint:
    """`python -m repro analyze` must delegate, including leading options
    (argparse REMAINDER would otherwise swallow them)."""

    def _run(self, *arguments):
        return subprocess.run(
            [sys.executable, "-m", "repro", "analyze", *arguments],
            capture_output=True,
            text=True,
            cwd=str(Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )

    def test_delegates_with_leading_option(self):
        proc = self._run("--no-config", "--no-baseline", CLEANPKG)
        assert proc.returncode == EXIT_CLEAN, proc.stderr
        assert "all clean" in proc.stdout

    def test_findings_propagate_exit_code(self):
        proc = self._run("--no-config", "--no-baseline", RACEPKG)
        assert proc.returncode == EXIT_FINDINGS, proc.stderr

    def test_help_via_stub_parser(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            cwd=str(Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "analyze" in proc.stdout
