"""The known-leakage fixture: calibration data reaches fit() across
module boundaries (REP301) in three distinct ways."""

from .splits import split_train_calibration
from .training import run_training, train_model


def leak_via_seam(model, X, y, rng):
    """Seam-derived calibration indices fed straight into fit()."""
    train_idx, cal_idx = split_train_calibration(len(y), 0.25, rng)
    model.fit(X[cal_idx], y[cal_idx])  # REP301: direct, seam-tainted
    return model


def leak_one_module_away(model, X_cal, y_cal):
    """Calibration-named arrays crossing one module boundary."""
    return train_model(model, X_cal, y_cal)  # REP301 via train_model


def leak_two_calls_away(model, X, y, rng):
    """Calibration rows reaching fit() through two forwarding calls."""
    train_idx, cal_idx = split_train_calibration(len(y), 0.25, rng)
    X_cal = X[cal_idx]
    y_cal = y[cal_idx]
    return run_training(model, X_cal, y_cal)  # REP301 via run_training
