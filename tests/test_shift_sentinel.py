"""Tests for the exchangeability and covariate-shift sentinels."""

import numpy as np
import pytest

from repro.shift import (
    ConformalTestMartingale,
    CovariateShiftDetector,
)


def _scores(rng, n, loc=0.0):
    return rng.normal(loc=loc, scale=1.0, size=n)


class TestMartingale:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 1.0},
            {"epsilons": []},
            {"epsilons": [0.0]},
            {"epsilons": [1.0]},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            ConformalTestMartingale(**kwargs)

    def test_observe_before_arm_raises(self):
        with pytest.raises(RuntimeError):
            ConformalTestMartingale().observe([0.0])

    def test_arm_validates_reference(self):
        sentinel = ConformalTestMartingale()
        with pytest.raises(ValueError, match="non-empty"):
            sentinel.arm([])
        with pytest.raises(ValueError, match="finite"):
            sentinel.arm([1.0, np.nan])

    def test_quiet_on_exchangeable_stream(self, rng):
        sentinel = ConformalTestMartingale(random_state=0).arm(
            _scores(rng, 200)
        )
        alarm = sentinel.observe(_scores(rng, 400))
        assert alarm is None
        assert not sentinel.in_alarm_
        assert sentinel.alarms_ == []

    def test_alarms_on_shifted_stream(self, rng):
        sentinel = ConformalTestMartingale(random_state=0).arm(
            _scores(rng, 200)
        )
        alarm = sentinel.observe(_scores(rng, 300, loc=3.0))
        assert alarm is not None
        assert sentinel.in_alarm_
        assert alarm.log10_martingale >= np.log10(alarm.threshold)
        assert 0 < alarm.n_observed <= 300
        assert "exchangeability rejected" in alarm.describe()

    def test_alarm_is_latched_and_recorded_once(self, rng):
        sentinel = ConformalTestMartingale(random_state=0).arm(
            _scores(rng, 200)
        )
        sentinel.observe(_scores(rng, 300, loc=3.0))
        sentinel.observe(_scores(rng, 100, loc=3.0))
        assert sentinel.in_alarm_
        assert len(sentinel.alarms_) == 1

    def test_rearm_resets_state(self, rng):
        sentinel = ConformalTestMartingale(random_state=0).arm(
            _scores(rng, 200)
        )
        sentinel.observe(_scores(rng, 300, loc=3.0))
        assert sentinel.in_alarm_
        sentinel.arm(_scores(rng, 200))
        assert not sentinel.in_alarm_
        assert sentinel.alarms_ == []
        assert sentinel.n_observed_ == 0
        assert sentinel.log10_martingale_ == pytest.approx(0.0)

    def test_trajectory_is_deterministic(self):
        histories = []
        for _ in range(2):
            rng = np.random.default_rng(7)
            sentinel = ConformalTestMartingale(random_state=3).arm(
                _scores(rng, 150)
            )
            sentinel.observe(_scores(rng, 250, loc=1.0))
            histories.append(list(sentinel.log10_history_))
        assert histories[0] == histories[1]

    def test_rejects_non_finite_scores(self, rng):
        sentinel = ConformalTestMartingale(random_state=0).arm(
            _scores(rng, 100)
        )
        with pytest.raises(ValueError, match="finite"):
            sentinel.observe([np.inf])


class TestDetector:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_bins": 1},
            {"window": 10, "min_observations": 20},
            {"psi_threshold": 0.0},
            {"alarm_fraction": 0.0},
            {"alarm_fraction": 1.5},
            {"min_observations": 0},
            {"epsilon": 0.0},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            CovariateShiftDetector(**kwargs)

    def test_arm_validates_reference(self, rng):
        detector = CovariateShiftDetector()
        with pytest.raises(ValueError, match="2-D"):
            detector.arm(rng.normal(size=50))
        with pytest.raises(ValueError, match="n_bins"):
            detector.arm(rng.normal(size=(5, 3)))
        bad = rng.normal(size=(100, 3))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            detector.arm(bad)
        with pytest.raises(ValueError, match="feature_names"):
            CovariateShiftDetector(feature_names=["a"]).arm(
                rng.normal(size=(100, 3))
            )

    def test_quiet_on_same_distribution(self, rng):
        detector = CovariateShiftDetector(min_observations=50).arm(
            rng.normal(size=(300, 4))
        )
        alarm = detector.observe(rng.normal(size=(200, 4)))
        assert alarm is None
        assert not detector.in_alarm_
        assert np.all(detector.psi() < 0.25)

    def test_alarms_on_mean_shift(self, rng):
        detector = CovariateShiftDetector(
            min_observations=50, feature_names=["a", "b", "c", "d"]
        ).arm(rng.normal(size=(300, 4)))
        alarm = detector.observe(rng.normal(loc=2.0, size=(200, 4)))
        assert alarm is not None
        assert detector.in_alarm_
        assert alarm.fraction_flagged == 1.0
        names = [name for name, _ in alarm.top_features]
        assert set(names) <= {"a", "b", "c", "d"}
        assert "covariate shift" in alarm.describe()

    def test_psi_requires_min_observations(self, rng):
        detector = CovariateShiftDetector(min_observations=50).arm(
            rng.normal(size=(300, 2))
        )
        detector.observe(rng.normal(size=(10, 2)))
        with pytest.raises(RuntimeError, match="window rows"):
            detector.psi()
        with pytest.raises(RuntimeError, match="window rows"):
            detector.ks()

    def test_ks_ranks_the_shifted_feature_first(self, rng):
        detector = CovariateShiftDetector(min_observations=50).arm(
            rng.normal(size=(300, 3))
        )
        current = rng.normal(size=(200, 3))
        current[:, 1] += 3.0
        detector.observe(current)
        ks = detector.ks()
        assert int(np.argmax(ks)) == 1
        assert ks[1] > 0.8

    def test_alarm_latched_and_rearm_resets(self, rng):
        detector = CovariateShiftDetector(min_observations=50).arm(
            rng.normal(size=(300, 2))
        )
        detector.observe(rng.normal(loc=2.0, size=(100, 2)))
        # Even a return to the reference distribution keeps the latch.
        detector.observe(rng.normal(size=(400, 2)))
        assert detector.in_alarm_
        assert len(detector.alarms_) == 1
        detector.arm(rng.normal(size=(300, 2)))
        assert not detector.in_alarm_
        assert detector.n_observed_ == 0

    def test_observe_validates_batches(self, rng):
        detector = CovariateShiftDetector().arm(rng.normal(size=(300, 2)))
        with pytest.raises(ValueError, match="2-D"):
            detector.observe(rng.normal(size=10))
        with pytest.raises(ValueError, match="features"):
            detector.observe(rng.normal(size=(10, 5)))
        with pytest.raises(ValueError, match="finite"):
            detector.observe(np.full((5, 2), np.nan))
