"""Analysis rule protocol: whole-program checks over a project context.

Unlike syntactic lint rules (one module at a time, one shared AST
walk), an analysis rule sees the *whole project* -- every parsed
module, the function table, lazily built per-function CFGs, and the
call graph -- and returns its complete finding list in one call.
Suppressions, config filtering, and baselines are applied by the
analysis engine afterwards, so rules only decide what is a violation.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.devtools.analysis.callgraph import CallGraph, build_call_graph
from repro.devtools.analysis.cfg import ControlFlowGraph, build_cfg
from repro.devtools.analysis.project import FunctionInfo, ModuleInfo, Project
from repro.devtools.diagnostics import Diagnostic

__all__ = ["AnalysisRule", "ProjectContext"]


class ProjectContext:
    """Shared lookups for one analysis run (CFGs and call graph cached)."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self._callgraph: Optional[CallGraph] = None
        self._cfgs: Dict[str, ControlFlowGraph] = {}

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = build_call_graph(self.project)
        return self._callgraph

    def cfg(self, qualname: str) -> ControlFlowGraph:
        """The (cached) CFG of a registered function."""
        if qualname not in self._cfgs:
            node = self.project.functions[qualname].node
            body = node.body if not isinstance(node, ast.Lambda) else [
                ast.Expr(value=node.body)
            ]
            self._cfgs[qualname] = build_cfg(body)
        return self._cfgs[qualname]

    def functions(self) -> Iterable[FunctionInfo]:
        return self.project.functions.values()

    def module_of(self, function: FunctionInfo) -> Optional[ModuleInfo]:
        return self.project.modules.get(function.module)


class AnalysisRule:
    """Base class for whole-program (REP2xx/REP3xx) rules."""

    rule_id: str = "REP999"
    name: str = "abstract-analysis-rule"
    summary: str = ""
    rationale: str = ""

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        """Return every finding of this rule across the project."""
        raise NotImplementedError

    def diagnostic(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Diagnostic:
        """Build a finding pinned to ``node`` in ``module``."""
        return Diagnostic(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            rule_name=self.name,
            message=message,
        )
