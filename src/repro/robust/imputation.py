"""Bounded train-statistic imputation for unhealthy sensor readings.

Once :class:`repro.robust.FeatureHealthGuard` has classified a batch,
something still has to produce a *finite* feature matrix for the
models, which enforce the strict ``check_X`` contract.  The policy here
is deliberately conservative -- it never invents information, it only
bounds the damage:

* missing entries (NaN/Inf) are replaced by the training median of the
  column -- the maximum-ignorance plug-in for a robust location,
* stuck columns are also medianised: a frozen reading carries no
  per-chip information and leaving the stuck code in place would feed a
  systematically wrong but plausible-looking value to the model,
* every value is finally clipped into the (slightly inflated) training
  range, so a drifted-but-alive sensor cannot drag a tree or linear
  model into wild extrapolation.

The interval-width penalty for all this guessing is charged elsewhere:
the degradation policy (:mod:`repro.robust.fallback`) inflates the
interval in proportion to how much of the batch was imputed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.base import check_fitted, check_X

__all__ = ["TrainStatImputer"]


class TrainStatImputer:
    """Median fill + range clipping from training statistics.

    Parameters
    ----------
    clip:
        When True (default), clip every output value into the observed
        training range inflated by ``clip_margin`` on each side.
    clip_margin:
        Fractional range inflation applied before clipping; 0 clips to
        the exact training min/max.
    """

    def __init__(self, clip: bool = True, clip_margin: float = 0.25) -> None:
        if clip_margin < 0:
            raise ValueError(f"clip_margin must be >= 0, got {clip_margin}")
        self.clip = bool(clip)
        self.clip_margin = float(clip_margin)
        self.median_ = None

    def fit(self, X: np.ndarray) -> "TrainStatImputer":
        """Capture per-feature median and clipping range from clean data."""
        X = check_X(X)
        self.median_ = np.median(X, axis=0)
        span = X.max(axis=0) - X.min(axis=0)
        self.lower_ = X.min(axis=0) - self.clip_margin * span
        self.upper_ = X.max(axis=0) + self.clip_margin * span
        self.n_features_in_ = int(X.shape[1])
        return self

    def transform(
        self, X: np.ndarray, stuck: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Return a finite, bounded copy of ``X``.

        Parameters
        ----------
        X:
            Possibly corrupted batch (NaN/Inf allowed).
        stuck:
            Optional (n_features,) bool mask of stuck columns (from a
            :class:`~repro.robust.guard.HealthReport`); those columns
            are replaced wholesale by the training median.
        """
        check_fitted(self, "median_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (n_samples, n_features), got shape {X.shape}")
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, imputer was fitted on "
                f"{self.n_features_in_}"
            )
        out = np.where(np.isfinite(X), X, self.median_)
        if stuck is not None:
            stuck = np.asarray(stuck, dtype=bool)
            if stuck.shape != (self.n_features_in_,):
                raise ValueError(
                    f"stuck mask has shape {stuck.shape}, expected "
                    f"({self.n_features_in_},)"
                )
            out[:, stuck] = self.median_[stuck]
        if self.clip:
            out = np.clip(out, self.lower_, self.upper_)
        return out
