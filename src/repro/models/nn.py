"""The 2-layer MLP point/quantile regressor of paper Section IV-C.4.

Architecture and training exactly as stated in the paper (which follows
Yin et al., ITC 2023): one hidden layer of 16 ReLU units, Adam with
learning rate 0.01, 3000 full-batch epochs, and an L2 weight penalty of
0.1.  The loss is mean squared error for point prediction or the pinball
loss of Eq. (5) when ``quantile`` is set (Section IV-E builds QR/CQR
neural networks this way).

The network is implemented with manual backpropagation on numpy arrays --
no autograd -- and standardises inputs and targets internally so the fixed
learning rate behaves across feature scales.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X,
    check_X_y,
)
from repro.models.losses import validate_quantile
from repro.models.optim import Adam

__all__ = ["MLPRegressor"]


class MLPRegressor(BaseRegressor):
    """Fully connected ReLU network with one hidden layer.

    Parameters
    ----------
    hidden_units:
        Width of the single hidden layer (paper: 16).
    learning_rate:
        Adam step size (paper: 0.01).
    epochs:
        Full-batch training epochs (paper: 3000).
    weight_decay:
        L2 penalty weight on all weight matrices, not biases (paper: 0.1).
    quantile:
        ``None`` trains on MSE; a value in (0, 1) trains on the pinball
        loss for that quantile.
    random_state:
        Seed for weight initialisation.
    """

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 0.01,
        epochs: int = 3000,
        weight_decay: float = 0.1,
        quantile: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1, got {hidden_units}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if quantile is not None:
            quantile = validate_quantile(quantile)
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.weight_decay = weight_decay
        self.quantile = quantile
        self.random_state = random_state
        self.weights_: Optional[List[np.ndarray]] = None

    # -- internals ----------------------------------------------------------
    def _loss_gradient(self, y: np.ndarray, prediction: np.ndarray) -> np.ndarray:
        """d(mean loss)/d(prediction), per sample."""
        n = y.shape[0]
        if self.quantile is None:
            return 2.0 * (prediction - y) / n
        # Pinball subgradient: −q where under-predicting, (1−q) where over.
        return np.where(y > prediction, -self.quantile, 1.0 - self.quantile) / n

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        rng = check_random_state(self.random_state)

        # Standardise inputs and target so the fixed Adam step size works
        # for Vmin in volts and features in amps alike.
        self._x_mean = X.mean(axis=0)
        x_std = X.std(axis=0)
        self._x_std = np.where(x_std == 0.0, 1.0, x_std)
        self._y_mean = float(y.mean())
        y_std = float(y.std())
        self._y_std = y_std if y_std > 0 else 1.0
        X_work = (X - self._x_mean) / self._x_std
        y_work = (y - self._y_mean) / self._y_std

        n_in, n_hidden = self.n_features_in_, self.hidden_units
        # He initialisation for the ReLU layer, Xavier-ish for the head.
        w1 = rng.normal(0.0, np.sqrt(2.0 / n_in), size=(n_in, n_hidden))
        b1 = np.zeros(n_hidden)
        w2 = rng.normal(0.0, np.sqrt(1.0 / n_hidden), size=(n_hidden, 1))
        b2 = np.zeros(1)
        parameters = [w1, b1, w2, b2]
        optimizer = Adam(learning_rate=self.learning_rate)

        n = X_work.shape[0]
        for _ in range(self.epochs):
            hidden_pre = X_work @ w1 + b1
            hidden = np.maximum(hidden_pre, 0.0)
            output = (hidden @ w2 + b2).ravel()

            d_output = self._loss_gradient(y_work, output)[:, None]
            grad_w2 = hidden.T @ d_output + self.weight_decay * w2 / n
            grad_b2 = d_output.sum(axis=0)
            d_hidden = (d_output @ w2.T) * (hidden_pre > 0)
            grad_w1 = X_work.T @ d_hidden + self.weight_decay * w1 / n
            grad_b1 = d_hidden.sum(axis=0)

            optimizer.step(parameters, [grad_w1, grad_b1, grad_w2, grad_b2])

        self.weights_ = parameters
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "weights_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        w1, b1, w2, b2 = self.weights_
        X_work = (X - self._x_mean) / self._x_std
        hidden = np.maximum(X_work @ w1 + b1, 0.0)
        output = (hidden @ w2 + b2).ravel()
        return output * self._y_std + self._y_mean
