"""Training-engine perf benchmark with a machine-readable JSON baseline.

Times the stages the fast-training tentpole optimised and writes
``benchmarks/results/BENCH_training.json`` (see
:mod:`repro.perf.bench` for the schema):

* synthetic dataset generation,
* single-tree fit, exact vs histogram splitter,
* GBM fit, ``tree_method="exact"`` vs ``"hist"``,
* oblivious (CatBoost-style) ensemble fit,
* greedy CFS selection,
* the Table-III grid over the XGBoost-family region methods -- the cells
  whose training cost the histogram finder actually changes -- run five
  ways: the pre-optimisation baseline (serial, ``xgb_tree_method="exact"``),
  serial hist and parallel hist with the shared-binning cache disabled
  (so those two stages keep their pre-cache meaning across commits),
  serial hist with the shared-binning cache on
  (``table3_grid_hist_shared``), and the process-backend engine
  (``table3_grid_hist_process``: cache + shared-memory code transport,
  ``n_jobs`` worker processes).

The grid invariants are recorded as named checks and asserted:

* ``grid_parallel_matches_serial`` / ``grid_shared_matches_serial`` /
  ``grid_process_matches_serial`` -- every variant equals the serial-hist
  grid *bit for bit* (every per-fold coverage/width float),
* ``grid_speedup_ok`` -- on a multi-core runner the optimised grid must
  be >= 3x faster than the exact serial baseline (recorded, asserted
  only when the host actually has >= 4 CPUs; a 1-core container cannot
  realise pool parallelism),
* ``grid_process_speedup_ok`` -- the shared-binning process engine must
  be >= 10x faster than the exact serial baseline (asserted on every
  profile but ``smoke``: the shared-binning savings are algorithmic --
  redundant quantile sweeps eliminated -- so they do not need spare
  cores to materialise).

Grid stages additionally record the process-tree peak RSS
(``peak_rss_mb``, a cumulative high-water mark sampled after the stage)
so memory regressions are diffable alongside wall time.  Wall times
vary run to run; everything else in the JSON is deterministic.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from conftest import BENCH_SEED, RESULTS_DIR, bench_profile_name, publish

from repro.eval.experiments import FeatureSet, _experiment_data, run_region_grid
from repro.features.cfs import CFSSelector
from repro.models.binning import clear_bin_cache, disable_bin_cache
from repro.models.gbm import GradientBoostingRegressor
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.tree import DecisionTreeRegressor
from repro.perf.bench import BenchRecorder, peak_rss_mb, time_call
from repro.perf.parallel import effective_n_jobs
from repro.silicon.dataset import SiliconDataset

REPORT_PATH = RESULTS_DIR / "BENCH_training.json"

# The region methods whose training cost the split-finder rewrite
# targets; NN/LR/GP cells are untouched by it and would only add noise.
GRID_METHODS = ("QR XGBoost", "CQR XGBoost")

# Required multiple on the optimised grid vs the pre-optimisation
# baseline -- enforced on runners with >= 4 CPUs (the CI perf-smoke
# host), recorded everywhere.
MIN_GRID_SPEEDUP = 3.0

# Required multiple on the shared-binning process engine vs the exact
# serial baseline.  Enforced on every profile but smoke: the win is
# algorithmic (binning each training matrix once instead of per member,
# per fold, per cell), not core-count dependent, so even a 1-CPU
# container must deliver it.
MIN_PROCESS_GRID_SPEEDUP = 10.0


def _bench_n_jobs() -> int:
    """Worker count for the parallel stages (REPRO_N_JOBS, default 4)."""
    if os.environ.get("REPRO_N_JOBS"):
        return effective_n_jobs(None)
    return 4


def _grid_fingerprint(grid) -> tuple:
    """Hashable, exact view of every per-fold metric in a region grid."""
    return tuple(
        (cell, result.coverage_per_fold, result.width_per_fold)
        for cell, result in grid.items()
    )


def _timed_grid(recorder: BenchRecorder, name: str, fn, **meta):
    """Time one grid stage and record it with the peak-RSS high-water mark.

    ``BenchRecorder.timed`` evaluates its metadata before the stage
    runs, which would sample RSS too early -- so time first, then record
    with :func:`peak_rss_mb` observed after the stage.
    """
    result, wall_s = time_call(fn)
    recorder.record(name, wall_s, peak_rss_mb=peak_rss_mb(), **meta)
    return result


def _fit_models(X, y, profile):
    """The micro-stage workloads: single tree, GBM, oblivious ensemble."""

    def tree(splitter):
        return DecisionTreeRegressor(
            max_depth=6, splitter=splitter, max_bins=profile.xgb_max_bins
        ).fit(X, y)

    def gbm(tree_method):
        return GradientBoostingRegressor(
            n_estimators=profile.xgb_estimators,
            tree_method=tree_method,
            max_bins=profile.xgb_max_bins,
            random_state=BENCH_SEED,
        ).fit(X, y)

    def oblivious():
        return ObliviousBoostingRegressor(
            n_estimators=profile.catboost_estimators,
            max_bins=profile.catboost_max_bins,
            random_state=BENCH_SEED,
        ).fit(X, y)

    return tree, gbm, oblivious


def _render(recorder: BenchRecorder) -> str:
    report = recorder.as_dict()
    lines = [
        f"benchmark={report['benchmark']} profile={report['profile']} "
        f"n_jobs={report['n_jobs']} git_sha={report['git_sha']}",
        "",
        f"{'stage':<34}{'wall_s':>12}",
    ]
    for name, entry in report["timings"].items():
        lines.append(f"{name:<34}{entry['wall_s']:>12.4f}")
    lines.append("")
    for name, ratio in report["speedups"].items():
        lines.append(f"speedup {name:<26}{ratio:>12.2f}x")
    for name, passed in report["checks"].items():
        lines.append(f"check   {name:<26}{'PASS' if passed else 'FAIL':>12}")
    return "\n".join(lines)


def test_training_engine_perf(dataset, profile, bench_scope):
    temperatures, read_points = bench_scope
    n_jobs = _bench_n_jobs()
    recorder = BenchRecorder(
        benchmark="training", profile=bench_profile_name(), n_jobs=n_jobs
    )

    recorder.timed(
        "dataset_generate",
        lambda: SiliconDataset.generate(seed=BENCH_SEED),
        meta_seed=BENCH_SEED,
    )

    X, y = _experiment_data(dataset, temperatures[0], read_points[0], FeatureSet.BOTH)
    tree, gbm, oblivious = _fit_models(X, y, profile)

    recorder.timed("tree_fit_exact", lambda: tree("exact"), repeats=3)
    recorder.timed("tree_fit_hist", lambda: tree("hist"), repeats=3)
    recorder.speedup("tree_fit", "tree_fit_exact", "tree_fit_hist")

    recorder.timed("gbm_fit_exact", lambda: gbm("exact"))
    recorder.timed("gbm_fit_hist", lambda: gbm("hist"))
    recorder.speedup("gbm_fit", "gbm_fit_exact", "gbm_fit_hist")

    recorder.timed("oblivious_fit", oblivious)
    recorder.timed(
        "cfs_select", lambda: CFSSelector(k_max=10).fit(X, y), repeats=3
    )

    def grid(grid_profile, grid_jobs, backend="thread"):
        return run_region_grid(
            dataset,
            GRID_METHODS,
            temperatures,
            read_points,
            profile=grid_profile,
            seed=BENCH_SEED,
            n_jobs=grid_jobs,
            backend=backend,
        )

    exact_profile = dataclasses.replace(profile, xgb_tree_method="exact")
    meta = dict(methods=list(GRID_METHODS))
    # The first three stages keep their pre-cache meaning across commits:
    # every fit re-bins its own training matrix, exactly as before the
    # shared-binning cache existed.
    with disable_bin_cache():
        _timed_grid(
            recorder, "table3_grid_exact_serial", lambda: grid(exact_profile, 1), **meta
        )
        serial = _timed_grid(
            recorder, "table3_grid_hist_serial", lambda: grid(profile, 1), **meta
        )
        parallel = _timed_grid(
            recorder, "table3_grid_hist_parallel", lambda: grid(profile, n_jobs), **meta
        )

    # The cached stages each start cold so they measure build-once,
    # reuse-everywhere rather than a warm cache left by a prior stage.
    clear_bin_cache()
    shared = _timed_grid(
        recorder, "table3_grid_hist_shared", lambda: grid(profile, 1), **meta
    )
    clear_bin_cache()
    process = _timed_grid(
        recorder,
        "table3_grid_hist_process",
        lambda: grid(profile, n_jobs, backend="process"),
        **meta,
    )

    serial_fp = _grid_fingerprint(serial)
    parity = serial_fp == _grid_fingerprint(parallel)
    shared_parity = serial_fp == _grid_fingerprint(shared)
    process_parity = serial_fp == _grid_fingerprint(process)
    recorder.check("grid_parallel_matches_serial", parity)
    recorder.check("grid_shared_matches_serial", shared_parity)
    recorder.check("grid_process_matches_serial", process_parity)

    ratio = recorder.speedup(
        "table3_grid", "table3_grid_exact_serial", "table3_grid_hist_parallel"
    )
    recorder.speedup(
        "table3_grid_serial_only", "table3_grid_exact_serial", "table3_grid_hist_serial"
    )
    recorder.speedup(
        "table3_grid_shared", "table3_grid_exact_serial", "table3_grid_hist_shared"
    )
    process_ratio = recorder.speedup(
        "table3_grid_process", "table3_grid_exact_serial", "table3_grid_hist_process"
    )
    cpus = os.cpu_count() or 1
    speedup_ok = ratio >= MIN_GRID_SPEEDUP
    recorder.check("grid_speedup_ok", speedup_ok)
    process_speedup_ok = process_ratio >= MIN_PROCESS_GRID_SPEEDUP
    recorder.check("grid_process_speedup_ok", process_speedup_ok)

    path = recorder.write(REPORT_PATH)
    publish("perf_training", _render(recorder))
    print(f"wrote {path}")

    assert parity, "parallel grid diverged from serial grid"
    assert shared_parity, "shared-binning grid diverged from serial grid"
    assert process_parity, "process-backend grid diverged from serial grid"
    if cpus >= 4 and n_jobs >= 4:
        assert speedup_ok, (
            f"optimised grid only {ratio:.2f}x faster than the exact serial "
            f"baseline (required {MIN_GRID_SPEEDUP}x)"
        )
    if bench_profile_name() != "smoke":
        assert process_speedup_ok, (
            f"process-backend grid only {process_ratio:.2f}x faster than the "
            f"exact serial baseline (required {MIN_PROCESS_GRID_SPEEDUP}x)"
        )


def test_parallel_grid_determinism(dataset, profile, bench_scope):
    """n_jobs=1 and n_jobs=4 grids are identical -- the CI parity gate."""
    temperatures, read_points = bench_scope
    kwargs = dict(profile=profile, seed=BENCH_SEED)
    serial = run_region_grid(
        dataset, GRID_METHODS[:1], temperatures, read_points, n_jobs=1, **kwargs
    )
    parallel = run_region_grid(
        dataset, GRID_METHODS[:1], temperatures, read_points, n_jobs=4, **kwargs
    )
    assert _grid_fingerprint(serial) == _grid_fingerprint(parallel)
    for result in serial.values():
        assert np.all(np.isfinite(result.width_per_fold))
