"""Serving Vmin intervals when on-chip monitors die in the field.

The paper's reliability pitch assumes every ROD/CPD sensor keeps
reporting.  This demo breaks that assumption on purpose: it deploys a
:class:`repro.robust.RobustVminFlow` (the hardened wrapper around the
paper's CQR pipeline), then

1. kills 10 % of the ROD sensors and shows the flow *degrading* --
   imputing the dead columns and widening intervals -- instead of
   crashing on NaN,
2. kills the whole monitor block and shows the graceful *fallback* to a
   parametric-only model,
3. sweeps a full fault campaign and prints the stress report
   (coverage/length per fault kind and severity),
4. streams aged in-field labels until the rolling-coverage monitor
   alarms and online (Gibbs-Candès) recalibration kicks in.

Run:
    python examples/degraded_monitors.py [--smoke]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import FaultCampaign, RobustVminFlow
from repro.eval import run_fault_campaign
from repro.models import ObliviousBoostingRegressor
from repro.robust import DeadSensors, FaultScenario
from repro.silicon import SiliconDataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    dataset = SiliconDataset.generate(seed=args.seed)
    X, names = dataset.features(hours=0)
    y = dataset.target(temperature_c=25.0, hours=0)
    n_train = 110
    n_trees = 15 if args.smoke else 100

    # Column groups: time-zero parametric block (still trustworthy when
    # monitors die) vs the on-chip ROD/CPD block (the thing that fails).
    parametric_cols = [i for i, n in enumerate(names) if n.startswith("par_")]
    monitor_cols = [i for i, n in enumerate(names) if not n.startswith("par_")]
    rod_cols = [i for i, n in enumerate(names) if n.startswith("rod_")]

    flow = RobustVminFlow(
        base_model=ObliviousBoostingRegressor(
            n_estimators=n_trees, quantile=0.5, random_state=args.seed
        ),
        alpha=0.1,
        random_state=args.seed,
        monitor_window=30,
        monitor_tolerance=0.05,
        monitor_min_observations=15,
        gamma=0.2,
    )
    flow.fit(
        X[:n_train],
        y[:n_train],
        feature_names=names,
        fallback_columns=parametric_cols,
        monitor_columns=monitor_cols,
    )
    X_test, y_test = X[n_train:], y[n_train:]

    clean = flow.predict_interval(X_test)
    print(f"guaranteed coverage (clean inputs): {flow.guaranteed_coverage_:.1%}")
    print(
        f"clean serve:     status={clean.status.value:<9} "
        f"coverage={clean.coverage(y_test):6.1%}  "
        f"width={clean.mean_width*1e3:5.1f} mV"
    )

    # ------------------------------------------------------------------
    # 1. 10 % of ROD sensors dead: degrade, impute, widen.
    # ------------------------------------------------------------------
    ten_pct_dead = FaultScenario(
        name="10% ROD sensors dead",
        injectors=(DeadSensors(0.10, columns=rod_cols),),
        severity=0.10,
        seed=args.seed,
    )
    degraded = flow.predict_interval(ten_pct_dead.apply(X_test))
    print(
        f"10% RODs dead:   status={degraded.status.value:<9} "
        f"coverage={degraded.coverage(y_test):6.1%}  "
        f"width={degraded.mean_width*1e3:5.1f} mV  "
        f"(inflation {degraded.inflation:.2f}x, "
        f"{int(degraded.health.unhealthy.sum())} columns imputed)"
    )

    # ------------------------------------------------------------------
    # 2. The whole monitor block dead: parametric-only fallback.
    # ------------------------------------------------------------------
    all_dead = FaultScenario(
        name="monitor block dead",
        injectors=(DeadSensors(1.0, columns=monitor_cols),),
        severity=1.0,
        seed=args.seed,
    )
    fellback = flow.predict_interval(all_dead.apply(X_test))
    print(
        f"monitors dead:   status={fellback.status.value:<9} "
        f"coverage={fellback.coverage(y_test):6.1%}  "
        f"width={fellback.mean_width*1e3:5.1f} mV  "
        f"(fallback model used: {fellback.used_fallback})"
    )
    for note in fellback.notes:
        print(f"                 note: {note}")

    # ------------------------------------------------------------------
    # 3. Full fault-campaign stress report.
    # ------------------------------------------------------------------
    severities = (0.1,) if args.smoke else (0.05, 0.1, 0.2)
    campaign = FaultCampaign.standard(
        severities=severities, columns=monitor_cols, seed=args.seed
    )
    report = run_fault_campaign(flow, X_test, y_test, campaign)
    print()
    print(report.to_table(title="Fault campaign | 25C / 0h holdout"))
    print(
        f"worst dead-sensor coverage drop: "
        f"{report.coverage_drop('dead_sensors')*100:+.1f} points vs nominal"
    )

    # ------------------------------------------------------------------
    # 4. Coverage drift -> alarm -> online recalibration.
    # ------------------------------------------------------------------
    print("\nstreaming aged labels against the time-zero model:")
    read_points = (168, 1008) if args.smoke else (168, 504, 1008)
    for hours in read_points:
        y_aged = dataset.target(25.0, hours)[n_train:]
        for start in range(0, X_test.shape[0], 6):
            stop = min(start + 6, X_test.shape[0])
            alarm = flow.observe(X_test[start:stop], y_aged[start:stop])
            if alarm is not None:
                print(f"  !! {alarm.describe()} -> recalibrating online")
        print(
            f"  after {hours:4d} h: rolling coverage "
            f"{flow.rolling_coverage():6.1%}, recalibrations "
            f"{flow.recalibrations_}, adaptive alpha_t "
            f"{flow.adaptive_.alpha_t: .3f}"
        )
    print(
        f"\ntotal alarms: {len(flow.alarms_)}; "
        f"online recalibration active: {flow.adaptive_active}"
    )


if __name__ == "__main__":
    main()
